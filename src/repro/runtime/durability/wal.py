"""Per-shard write-ahead logs: append-only, length-prefixed, CRC-checked.

One log per shard (mirroring Wu et al.'s per-core logs, PAPERS.md), written
by the *coordinator* at routing time: a tuple is logged to every shard it
routes to before the shard worker ever sees it, and every topology change a
shard engine observes (register / restore / deregister) is logged to that
shard's log in execution order.  Each shard's log is therefore a faithful,
self-contained history of that shard's engine — which is exactly what lets
recovery replay the logs shard-by-shard, in parallel, with no cross-shard
coordination (see :mod:`repro.runtime.durability.recovery`).

Record format
=============

Every record is::

    +----------------+----------------+----------------------------+
    | length: u32 LE | crc32: u32 LE  | payload (``length`` bytes) |
    +----------------+----------------+----------------------------+

with ``payload`` the UTF-8 compact JSON array ``[type, idx, op, data]``:

* ``type`` — one of the record types below;
* ``idx`` — the global ingest index (``tuples_ingested`` stamp) current
  when the record was written; monotone within a log, comparable across
  logs (the coordinator is single-threaded);
* ``op`` — a global topology-operation counter for control records
  (``0`` for tuples); recovery uses it to resolve the crashed-mid-move
  window where a query transiently exists on two shards;
* ``data`` — per-type body, reusing the runtime protocol's wire forms.

Record types:

============= ======================================================
``T``         one routed tuple; ``data`` is the protocol tuple wire
              form ``(tau, u, v, l, op)``
``R``         engine-level registration; ``data`` is ``[name,
              expression, semantics, max_nodes_per_tree, partition]``
``S``         engine-level state adoption (migration / split landing);
              ``data`` is ``[name, semantics, state_dict]`` with
              ``state_dict`` a full order-exact evaluator checkpoint
``D``         engine-level deregistration; ``data`` is the name
============= ======================================================

Segments are named ``seg-<first lsn, 10 digits>.wal``; the writer rotates
to a fresh segment once the active one exceeds the configured byte size,
which is what lets checkpointing prune the log: a segment whose records
all precede the newest checkpoint's horizon can simply be deleted.

Torn tails: a record that cannot be fully read (short header, short
payload, or CRC mismatch) at the *tail of the last segment* is the
expected signature of a crash mid-write and ends iteration cleanly;
anywhere else it raises :class:`~repro.errors.WALCorruptionError` naming
the segment and byte offset.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from ...core.checkpoint import decode_state
from ...errors import WALCorruptionError

__all__ = [
    "TUPLE",
    "REGISTER",
    "RESTORE",
    "DEREGISTER",
    "RECORD_TYPES",
    "WalInstruments",
    "WalRecord",
    "WalWriter",
    "read_wal",
    "last_segment_lsn",
    "prune_segments",
    "shard_log_dir",
]

#: Record type: one routed tuple (protocol wire form).
TUPLE = "T"
#: Record type: engine-level query registration.
REGISTER = "R"
#: Record type: engine-level adoption of a full evaluator state.
RESTORE = "S"
#: Record type: engine-level query removal.
DEREGISTER = "D"

#: Every record type a reader must understand.
RECORD_TYPES = (TUPLE, REGISTER, RESTORE, DEREGISTER)

_HEADER = struct.Struct("<II")
_SEGMENT_GLOB = "seg-*.wal"


def shard_log_dir(root: Path, shard_id: int) -> Path:
    """The directory holding one shard's WAL segments under ``root``."""
    return Path(root) / f"shard-{shard_id}"


def _segment_path(directory: Path, first_lsn: int) -> Path:
    """Path of the segment whose first record carries ``first_lsn``."""
    return directory / f"seg-{first_lsn:010d}.wal"


def _segment_first_lsn(path: Path) -> int:
    """The first-record LSN encoded in a segment's file name."""
    stem = path.name[len("seg-") : -len(".wal")]
    try:
        return int(stem)
    except ValueError:
        raise WALCorruptionError(f"unrecognized WAL segment name {path.name!r} in {path.parent}") from None


def _sorted_segments(directory: Path) -> List[Path]:
    """All segments of one shard log, in LSN order."""
    return sorted(Path(directory).glob(_SEGMENT_GLOB), key=_segment_first_lsn)


@dataclass
class WalInstruments:
    """Observability hooks for one shard's :class:`WalWriter` (all optional).

    The durability manager fills these with labelled children of the
    service's metric families; a writer constructed without instruments
    (recovery tooling, tests) skips the timing entirely.

    Attributes:
        append_seconds: histogram observing each append's write+flush
            latency in seconds.
        fsync_seconds: histogram observing each ``fsync`` call's latency.
        appended_bytes: counter of payload+header bytes appended.
        rotations: counter of segment rotations.
    """

    append_seconds: object = None
    fsync_seconds: object = None
    appended_bytes: object = None
    rotations: object = None


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record.

    Attributes:
        lsn: position of the record in its shard's log (1-based, monotone).
        type: record type, one of :data:`RECORD_TYPES`.
        idx: global ingest index current when the record was written.
        op: global topology-operation counter (``0`` for tuple records).
        data: per-type body (see the module docstring).
    """

    lsn: int
    type: str
    idx: int
    op: int
    data: object


class WalWriter:
    """Appends records to one shard's write-ahead log.

    Every append writes and *flushes* the record (so a killed process
    loses nothing that was appended); the fsync policy decides when
    records additionally reach the device:

    * ``"always"`` — fsync after every record (survives machine crash);
    * ``"batch"`` — fsync only in :meth:`sync` (group commit at
      checkpoint / close boundaries);
    * ``"off"`` — never fsync.

    Args:
        directory: the shard's log directory (created if missing).
        fsync: one of :data:`~repro.runtime.config.FSYNC_POLICIES`.
        segment_bytes: rotate the active segment beyond this size.
        start_lsn: LSN of the last record already in the log (``0`` for a
            fresh log); appends continue at ``start_lsn + 1`` in a new
            segment.
        instruments: optional :class:`WalInstruments` receiving append /
            fsync latencies, appended bytes and rotation counts.
    """

    def __init__(
        self,
        directory: Path,
        fsync: str = "batch",
        segment_bytes: int = 4_000_000,
        start_lsn: int = 0,
        instruments: Optional[WalInstruments] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.instruments = instruments
        self._lsn = start_lsn
        self._handle = None
        self._segment_size = 0

    @property
    def lsn(self) -> int:
        """LSN of the most recently appended record (0 = nothing yet)."""
        return self._lsn

    def append(self, record_type: str, idx: int, op: int, data: object) -> int:
        """Append one record; returns its LSN.

        The record is flushed to the OS before returning; whether it is
        also fsynced depends on the writer's policy.
        """
        payload = json.dumps([record_type, idx, op, data], separators=(",", ":")).encode("utf-8")
        if self._handle is None or self._segment_size >= self.segment_bytes:
            self._rotate()
        instruments = self.instruments
        started = time.perf_counter() if instruments is not None else 0.0
        self._handle.write(_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        self._handle.write(payload)
        self._handle.flush()
        if instruments is not None and instruments.append_seconds is not None:
            instruments.append_seconds.observe(time.perf_counter() - started)
        if self.fsync == "always":
            self._fsync()
        self._segment_size += _HEADER.size + len(payload)
        if instruments is not None and instruments.appended_bytes is not None:
            instruments.appended_bytes.inc(_HEADER.size + len(payload))
        self._lsn += 1
        return self._lsn

    def _fsync(self) -> None:
        """fsync the active segment, observing latency when instrumented."""
        instruments = self.instruments
        if instruments is not None and instruments.fsync_seconds is not None:
            started = time.perf_counter()
            os.fsync(self._handle.fileno())
            instruments.fsync_seconds.observe(time.perf_counter() - started)
        else:
            os.fsync(self._handle.fileno())

    def _rotate(self) -> None:
        """Close the active segment and open a fresh one at the next LSN."""
        rotated = self._handle is not None
        self._close_handle(final_sync=self.fsync != "off")
        path = _segment_path(self.directory, self._lsn + 1)
        self._handle = path.open("ab")
        self._segment_size = path.stat().st_size
        if rotated and self.instruments is not None and self.instruments.rotations is not None:
            self.instruments.rotations.inc()

    def sync(self) -> None:
        """Force appended records to the device (the ``"batch"`` commit point)."""
        if self._handle is not None and self.fsync != "off":
            self._handle.flush()
            self._fsync()

    def close(self) -> None:
        """Flush, sync (per policy) and close the active segment."""
        self._close_handle(final_sync=self.fsync != "off")

    def _close_handle(self, final_sync: bool) -> None:
        """Close the active segment handle, optionally fsyncing first."""
        if self._handle is None:
            return
        self._handle.flush()
        if final_sync:
            os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None


def last_segment_lsn(directory: Path) -> int:
    """LSN of the last intact record in a shard log (0 for an empty log)."""
    last = 0
    for record in read_wal(directory):
        last = record.lsn
    return last


def read_wal(directory: Path, start_lsn: int = 0) -> Iterator[WalRecord]:
    """Iterate one shard log's records with ``lsn > start_lsn``, in order.

    Args:
        directory: the shard's log directory; missing or empty yields
            nothing.
        start_lsn: skip records at or below this LSN (a checkpoint
            horizon).

    Yields:
        :class:`WalRecord` per intact record.

    Raises:
        WALCorruptionError: a record is truncated or fails its CRC
            anywhere except the tail of the last segment (where a torn
            record is the expected crash signature and ends iteration),
            or the segment chain has a gap.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return
    segments = _sorted_segments(directory)
    lsn = None
    for position, segment in enumerate(segments):
        first = _segment_first_lsn(segment)
        if lsn is None:
            lsn = first - 1
        elif first != lsn + 1:
            raise WALCorruptionError(
                f"WAL segment chain broken in {directory}: {segment.name} starts at lsn {first}, "
                f"expected {lsn + 1}"
            )
        last_segment = position == len(segments) - 1
        for record in _read_segment(segment, lsn, tolerate_tail=last_segment):
            lsn = record.lsn
            if record.lsn > start_lsn:
                yield record


def _read_segment(path: Path, lsn_before: int, tolerate_tail: bool) -> Iterator[WalRecord]:
    """Decode one segment file, yielding records after ``lsn_before``."""
    lsn = lsn_before
    with path.open("rb") as handle:
        offset = 0
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                if tolerate_tail:
                    return
                raise WALCorruptionError(
                    f"truncated WAL record header in {path} at offset {offset} "
                    f"({len(header)} of {_HEADER.size} bytes)"
                )
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length:
                if tolerate_tail:
                    return
                raise WALCorruptionError(
                    f"truncated WAL record payload in {path} at offset {offset} "
                    f"({len(payload)} of {length} bytes)"
                )
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                # A torn tail is a record the crash cut short — which means
                # nothing can follow it.  A full payload failing its CRC
                # *with more bytes after it* is corruption of acknowledged
                # data, even in the last segment.
                if tolerate_tail and not handle.read(1):
                    return
                raise WALCorruptionError(f"WAL record CRC mismatch in {path} at offset {offset}")
            record_type, idx, op, data = _decode_payload(payload, path, offset)
            lsn += 1
            offset += _HEADER.size + length
            yield WalRecord(lsn=lsn, type=record_type, idx=idx, op=op, data=data)


def _decode_payload(payload: bytes, path: Path, offset: int) -> tuple:
    """Decode a CRC-validated payload; malformed JSON is real corruption."""
    try:
        decoded = decode_state(payload, what=f"WAL record in {path} at offset {offset}")
    except ValueError as exc:  # CheckpointError subclasses ValueError
        raise WALCorruptionError(str(exc)) from exc
    if not isinstance(decoded, list) or len(decoded) != 4 or decoded[0] not in RECORD_TYPES:
        raise WALCorruptionError(
            f"unrecognized WAL record in {path} at offset {offset}: {str(decoded)[:80]}"
        )
    return tuple(decoded)


def prune_segments(directory: Path, horizon_lsn: int) -> List[Path]:
    """Delete segments whose records all have ``lsn <= horizon_lsn``.

    The active (last) segment is never deleted.  Returns the deleted
    paths.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    segments = _sorted_segments(directory)
    deleted: List[Path] = []
    for segment, successor in zip(segments, segments[1:]):
        # The segment's records end right before its successor starts.
        if _segment_first_lsn(successor) - 1 <= horizon_lsn:
            segment.unlink()
            deleted.append(segment)
        else:
            break
    return deleted
