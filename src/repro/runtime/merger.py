"""Timestamp-ordered merging of per-shard result streams.

Each shard worker accumulates per-query :class:`~repro.core.results.ResultStream`
objects independently.  To present the runtime's output as *one* global
result stream — the shape the paper's single-threaded prototype produces —
the per-query streams are k-way merged by timestamp.  The merge reuses
:func:`repro.graph.stream.merge_by_timestamp` (the same lazy ``heapq``
merge backing :func:`~repro.graph.stream.merge_streams`), with events
tagged by their query name so consumers know which persistent query fired.

Within one stream events are already in timestamp order (streams are
append-only and inputs arrive in timestamp order), so the merge is exact;
ties across streams are broken deterministically by input position.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, NamedTuple, Sequence, Tuple

from ..core.partition import vertex_sort_key
from ..core.results import ResultEvent, ResultStream
from ..graph.stream import merge_by_timestamp

__all__ = [
    "TaggedResultEvent",
    "merge_result_events",
    "merge_result_streams",
    "merge_partition_events",
    "collect_results",
]


class TaggedResultEvent(NamedTuple):
    """A result event annotated with the query that produced it."""

    timestamp: int
    query: str
    event: ResultEvent

    def __str__(self) -> str:
        return f"{self.query}:{self.event}"


def _tagged(query: str, events: Iterable[ResultEvent]) -> Iterator[TaggedResultEvent]:
    for event in events:
        yield TaggedResultEvent(event.timestamp, query, event)


def merge_result_events(streams: Dict[str, Iterable[ResultEvent]]) -> Iterator[TaggedResultEvent]:
    """Lazily merge named event streams into one timestamp-ordered stream.

    Args:
        streams: mapping of query name to its (timestamp-ordered) events.

    Yields:
        :class:`TaggedResultEvent` in non-decreasing timestamp order.
    """
    sources = [_tagged(query, events) for query, events in sorted(streams.items())]
    return merge_by_timestamp(*sources)


def merge_result_streams(streams: Dict[str, ResultStream]) -> List[TaggedResultEvent]:
    """Materialize the global merged stream of several result streams."""
    return list(merge_result_events({name: stream.events for name, stream in streams.items()}))


def merge_partition_events(
    parts: Sequence[Tuple[Sequence[ResultEvent], Sequence[int]]],
) -> ResultStream:
    """Reassemble root-partition result streams into the exact global stream.

    Each input is one partition's ``(events, emission_keys)`` pair as
    produced by a root-partitioned
    :class:`~repro.core.rapq.RAPQEvaluator`.  The merge key is
    ``(emission key, vertex_sort_key(event.source))``: the emission key
    pins the relevant tuple that produced the event (every partition
    counts the same relevant-tuple sequence), and the event's ``source``
    is its spanning-tree root, which the evaluator visits in canonical
    :func:`~repro.core.partition.vertex_sort_key` order within a tuple.
    Events with equal keys come from the same tree, hence the same
    partition, where their relative order is already correct — so the
    stable k-way merge reproduces the unpartitioned evaluator's stream
    bit-for-bit (order and content, deletions included).

    Args:
        parts: per-partition ``(events, keys)`` pairs; ``keys`` must be
            parallel to ``events``.

    Returns:
        one :class:`~repro.core.results.ResultStream` with the merged
        events replayed in order (so distinct/active-pair bookkeeping
        matches the unpartitioned evaluator's).

    Raises:
        ValueError: if any partition's key list does not match its events.
    """
    keyed: List[List[Tuple[Tuple, ResultEvent]]] = []
    for events, keys in parts:
        if len(events) != len(keys):
            raise ValueError(f"partition stream has {len(events)} events but {len(keys)} emission keys")
        keyed.append([((key, vertex_sort_key(event.source)), event) for event, key in zip(events, keys)])
    combined = ResultStream()
    combined.extend(event for _, event in heapq.merge(*keyed, key=lambda item: item[0]))
    return combined


def collect_results(streams: Iterable[ResultStream]) -> ResultStream:
    """Fold several result streams into a single global :class:`ResultStream`.

    Events are replayed in merged timestamp order, so the combined stream's
    distinct/active pair bookkeeping matches what a single engine evaluating
    all queries would have accumulated.
    """
    combined = ResultStream()
    combined.extend(merge_by_timestamp(*[stream.events for stream in streams]))
    return combined
