"""Stream routing: place queries on shards, route tuples to shards.

The runtime parallelizes at the *query* level: every registered query is
owned by exactly one shard, and a shard worker evaluates only the queries
placed on it.  Two decisions live here:

* **query placement** — a pluggable :class:`ShardingPolicy` assigns each
  newly registered query to a shard (round-robin, stable hash of the query
  name, or label affinity which co-locates queries with overlapping
  alphabets so fewer shards need to see each tuple);
* **tuple routing** — a tuple must reach every shard hosting a query whose
  alphabet contains the tuple's label.  Tuples relevant to no shard are
  dropped at the router, mirroring the engine's own alphabet filter (§5.2):
  an evaluator discards such tuples before touching its window, so skipping
  them cannot change any result.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple, Union

from ..graph.tuples import StreamingGraphTuple
from ..regex.analysis import QueryAnalysis
from .config import SHARDING_POLICIES
from .observability.logs import get_logger

_LOG = get_logger("runtime.router")

__all__ = [
    "ShardView",
    "ShardingPolicy",
    "RoundRobinPolicy",
    "HashPolicy",
    "LabelAffinityPolicy",
    "StreamRouter",
    "make_policy",
]


@dataclass
class ShardView:
    """What a sharding policy may inspect about one shard.

    Attributes:
        shard_id: position of the shard in the worker list.
        queries: names of the queries currently placed on the shard.
        label_counts: how many resident queries mention each label; the
            router routes a tuple to the shard iff its label has a
            positive count here.
    """

    shard_id: int
    queries: Set[str] = field(default_factory=set)
    label_counts: Counter = field(default_factory=Counter)

    @property
    def load(self) -> int:
        """Number of queries placed on this shard."""
        return len(self.queries)

    @property
    def labels(self) -> Set[str]:
        """Labels at least one resident query listens to."""
        return set(self.label_counts.keys())


class ShardingPolicy:
    """Strategy deciding which shard owns a newly registered query."""

    #: Policy name as accepted by :class:`repro.runtime.RuntimeConfig`.
    name = "abstract"

    def assign(self, query_name: str, analysis: QueryAnalysis, shards: Sequence[ShardView]) -> int:
        """Return the shard id that should own ``query_name``."""
        raise NotImplementedError


class RoundRobinPolicy(ShardingPolicy):
    """Cycle through the shards in registration order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, query_name, analysis, shards):
        """Place the query on the next shard in rotation."""
        shard = self._next % len(shards)
        self._next += 1
        return shard


class HashPolicy(ShardingPolicy):
    """Stable hash of the query name.

    Uses CRC32 rather than :func:`hash` so placement is deterministic
    across processes (``PYTHONHASHSEED`` randomizes ``str`` hashing), which
    keeps checkpoints and distributed deployments reproducible.
    """

    name = "hash"

    def assign(self, query_name, analysis, shards):
        """Place the query on the shard its name's CRC32 selects."""
        return zlib.crc32(query_name.encode("utf-8")) % len(shards)


class LabelAffinityPolicy(ShardingPolicy):
    """Co-locate queries with overlapping alphabets.

    Prefers the shard whose resident label set overlaps the new query's
    alphabet the most, breaking ties towards the least-loaded shard (and
    then the lowest id).  Grouping queries by label means each incoming
    tuple fans out to fewer shards.
    """

    name = "label_affinity"

    def assign(self, query_name, analysis, shards):
        """Place the query where its alphabet overlaps resident labels most."""
        alphabet = set(analysis.alphabet)

        def score(view: ShardView) -> Tuple[int, int, int]:
            """Rank shards: most overlap, then least loaded, then lowest id."""
            overlap = len(alphabet & view.labels)
            return (-overlap, view.load, view.shard_id)

        return min(shards, key=score).shard_id


_POLICIES = {policy.name: policy for policy in (RoundRobinPolicy, HashPolicy, LabelAffinityPolicy)}
assert set(_POLICIES) == set(SHARDING_POLICIES)


def make_policy(policy: Union[str, ShardingPolicy]) -> ShardingPolicy:
    """Instantiate a sharding policy from its name (or pass one through)."""
    if isinstance(policy, ShardingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(f"unknown sharding policy {policy!r}; expected one of {sorted(_POLICIES)}") from None


class StreamRouter:
    """Tracks query placement and routes tuples to the shards that need them."""

    def __init__(self, num_shards: int, policy: Union[str, ShardingPolicy] = "hash") -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.policy = make_policy(policy)
        self._shards = [ShardView(shard_id=i) for i in range(num_shards)]
        self._assignments: Dict[str, int] = {}
        self._alphabets: Dict[str, Set[str]] = {}
        self._epoch = 0
        #: Tuples routed to each shard so far (observability counters; a
        #: tuple fanning out to k shards counts once per shard).
        self.tuples_routed: Counter = Counter()
        #: Tuples relevant to no resident query, dropped at the router.
        self.tuples_dropped = 0

    @property
    def num_shards(self) -> int:
        """Number of shards this router places queries onto."""
        return len(self._shards)

    @property
    def epoch(self) -> int:
        """Version of the route table, bumped on every placement change.

        The migration choreography snapshots it after draining both shards
        and verifies it is unchanged before committing a move: a reentrant
        register/deregister/migrate (e.g. from a result callback) would
        invalidate the drain barrier, so the move is rolled back instead of
        misdelivering.  Buffered batches themselves carry no epoch — their
        delivery stays correct across placement changes because migrate()
        flushes both affected shards before state moves, and a shard engine
        only evaluates its resident queries.
        """
        return self._epoch

    def shards(self) -> List[ShardView]:
        """Current per-shard views (shared, do not mutate)."""
        return list(self._shards)

    # ------------------------------------------------------------------ #
    # Query placement
    # ------------------------------------------------------------------ #

    def assign(self, query_name: str, analysis: QueryAnalysis) -> int:
        """Place a query on a shard chosen by the policy; return the shard id."""
        shard = self.policy.assign(query_name, analysis, self._shards)
        return self.assign_to(query_name, analysis, shard)

    def assign_to(self, query_name: str, analysis: QueryAnalysis, shard: int) -> int:
        """Place a query on an explicit shard (checkpoint restore path)."""
        if query_name in self._assignments:
            raise ValueError(f"query {query_name!r} is already assigned")
        if not 0 <= shard < len(self._shards):
            raise ValueError(f"shard {shard} out of range [0, {len(self._shards)})")
        view = self._shards[shard]
        view.queries.add(query_name)
        alphabet = set(analysis.alphabet)
        view.label_counts.update(alphabet)
        self._assignments[query_name] = shard
        self._alphabets[query_name] = alphabet
        self._epoch += 1
        _LOG.debug("assigned query %r to shard %d (epoch %d)", query_name, shard, self._epoch)
        return shard

    def release(self, query_name: str) -> int:
        """Remove a query's placement; return the shard that owned it."""
        try:
            shard = self._assignments.pop(query_name)
        except KeyError:
            raise KeyError(f"no query named {query_name!r} is assigned") from None
        view = self._shards[shard]
        view.queries.discard(query_name)
        view.label_counts.subtract(self._alphabets.pop(query_name))
        view.label_counts += Counter()  # drop zero/negative entries
        self._epoch += 1
        _LOG.debug("released query %r from shard %d (epoch %d)", query_name, shard, self._epoch)
        return shard

    def move(self, query_name: str, target: int) -> int:
        """Re-home a query onto ``target``; return the shard it left.

        This is the routing half of live migration: future tuples matching
        the query's alphabet route to ``target`` instead of the old shard.
        The epoch is bumped so routing decisions taken against the old
        table are detectably stale.
        """
        source = self.shard_of(query_name)
        if not 0 <= target < len(self._shards):
            raise ValueError(f"shard {target} out of range [0, {len(self._shards)})")
        if target == source:
            return source
        alphabet = self._alphabets[query_name]
        source_view = self._shards[source]
        source_view.queries.discard(query_name)
        source_view.label_counts.subtract(alphabet)
        source_view.label_counts += Counter()  # drop zero/negative entries
        target_view = self._shards[target]
        target_view.queries.add(query_name)
        target_view.label_counts.update(alphabet)
        self._assignments[query_name] = target
        self._epoch += 1
        _LOG.debug(
            "moved query %r from shard %d to shard %d (epoch %d)",
            query_name,
            source,
            target,
            self._epoch,
        )
        return source

    def alphabet_of(self, query_name: str) -> Set[str]:
        """The label alphabet of an assigned query (shared, do not mutate)."""
        try:
            return self._alphabets[query_name]
        except KeyError:
            raise KeyError(f"no query named {query_name!r} is assigned") from None

    def shard_of(self, query_name: str) -> int:
        """Return the shard owning ``query_name``."""
        try:
            return self._assignments[query_name]
        except KeyError:
            raise KeyError(f"no query named {query_name!r} is assigned") from None

    def assignments(self) -> Dict[str, int]:
        """Mapping of query name to owning shard."""
        return dict(self._assignments)

    # ------------------------------------------------------------------ #
    # Tuple routing
    # ------------------------------------------------------------------ #

    def route(self, tup: StreamingGraphTuple) -> Tuple[int, ...]:
        """Return the shards that must see ``tup`` (may be empty).

        Routing time is also the origin of the end-to-end event-latency
        clock: when tracing samples a tuple, the coordinator stamps
        ``time.time()`` right after this call and the owning worker
        closes the interval when the tuple's batch completes
        (``repro_event_latency_seconds``).
        """
        label = tup.label
        shards = tuple(
            view.shard_id for view in self._shards if view.label_counts.get(label, 0) > 0
        )
        if shards:
            for shard in shards:
                self.tuples_routed[shard] += 1
        else:
            self.tuples_dropped += 1
        return shards

    def route_batch(self, batch: Sequence[StreamingGraphTuple]) -> Dict[int, List[StreamingGraphTuple]]:
        """Split a batch into per-shard sub-batches, preserving stream order."""
        routed: Dict[int, List[StreamingGraphTuple]] = {}
        for tup in batch:
            for shard in self.route(tup):
                routed.setdefault(shard, []).append(tup)
        return routed

    def __str__(self) -> str:
        loads = ", ".join(f"s{view.shard_id}:{view.load}" for view in self._shards)
        return f"StreamRouter(policy={self.policy.name}, shards=[{loads}])"
