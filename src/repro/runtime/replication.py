"""Hot-standby shard replication over the TCP transport.

PR 8's failover is *cold*: a dead TCP worker is recovered by replaying
its per-shard WAL onto a replacement fleet, a pause that grows with the
tail length.  This module makes failover *warm* (the per-shard variant of
Wu et al.'s per-core log shipping, PAPERS.md): each shard may have a hot
standby on a second ``repro worker --listen`` process, and the
coordinator streams the shard's record log to it **as it is written** —
so when the primary dies, recovery collapses to a *promotion* with zero
WAL replay.

Three cooperating pieces:

* :class:`ReplicationManager` — coordinator side.  Owns one
  :class:`StandbyReplica` per protected shard: arming dials the standby
  and sends the standard ``HELLO`` handshake extended with a
  ``"standby"`` role and a base LSN, shipping the same bootstrap frames a
  primary would get; from then on every record the service logs for the
  shard (the WAL record stream — tuples and topology changes, in
  execution order) is buffered and flushed to the standby as
  ``REPLICATE`` frames over the PR 8 tagged binary codec and CRC
  framing.  A per-replica reader thread consumes ``RACK`` frames, so the
  coordinator always knows the exact LSN the standby last acknowledged.
* :func:`serve_standby` — worker side, run by
  :class:`~repro.runtime.transport_tcp.TcpWorkerServer` when a ``HELLO``
  carries the standby role.  It applies each replicated record into a
  live-but-muted shard engine
  (:meth:`~repro.runtime.worker.ShardEngineServer.apply_replica_records`:
  results suppressed, state maintained), validating LSN continuity — a
  gap means records were lost or reordered, and the session aborts with
  :class:`~repro.errors.ReplicationError` rather than desync silently.
* **Promotion** — on ``WorkerUnavailableError`` the service asks the
  manager to :meth:`~ReplicationManager.promote`: flush the shard's
  buffered records, wait for the acked LSN to reach the shard's log head
  (the records were already *shipped*; nothing is re-read from the WAL,
  hence ``replayed_records == 0`` by construction), then send
  ``PROMOTE`` carrying that exact LSN.  The standby verifies it applied
  precisely that LSN (a stale LSN is refused with ``PROMOTE_FAILED``),
  replies ``PROMOTED``, and its session *becomes* a normal ``serve_shard``
  session on the same socket — unmuted from the promotion LSN onward.
  The coordinator adopts the socket into a fresh
  :class:`~repro.runtime.transport_tcp.TcpShardWorker` and the shard
  continues with a bit-identical result stream.

Replication frame vocabulary (all frames travel in the transport's
``<len u32><crc32 u32><payload>`` framing)::

    ("REPLICATE", ((lsn, type, idx, op, data), ...)[, trace_ctx])
                                                       coordinator -> standby
    ("RACK", applied_lsn)                              standby -> coordinator
    ("PROMOTE", lsn, emit_results[, operation_id])     coordinator -> standby
    ("PROMOTED", lsn)                                  standby -> coordinator
    ("PROMOTE_FAILED", applied_lsn, reason)            standby -> coordinator

Both optional trailing elements are version tolerant (older peers send
the short forms): ``trace_ctx`` is the frame-borne trace context of
:mod:`repro.runtime.observability.tracing` — the standby records its
apply run as a span of the sampled trace, which is how a failover trace
stays connected across the promotion — and ``operation_id`` correlates
the standby's promotion log lines with the coordinator's.

Record LSNs are per shard and count the shard's record stream from 1;
when durability is enabled they are numerically identical to the shard's
WAL LSNs (both count the same records at the same call sites), which is
what makes "promotion without WAL replay" checkable: the promotion
reports how many records it *waited* on (in-flight tail) and pins
``replayed_records`` at zero.

See ``docs/NETWORKING.md`` for the wire-level walkthrough.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ReplicationError, WireProtocolError, WorkerUnavailableError
from ..graph.window import WindowSpec
from .config import RuntimeConfig, parse_worker_address
from .durability import wal as wal_mod
from .observability.logs import get_logger
from .transport_tcp import (
    _BACKOFF_CAP_SECONDS,
    WIRE_VERSION,
    _send_all,
    encode_frame,
    recv_frame,
)

__all__ = [
    "PROMOTE",
    "PROMOTED",
    "PROMOTE_FAILED",
    "REPLICATE",
    "REPLICATE_ACK",
    "STANDBY_ROLE",
    "PromotionHandoff",
    "ReplicationManager",
    "StandbyReplica",
    "decode_replicate",
    "encode_replicate",
    "serve_standby",
    "validate_records",
]

_LOG = get_logger("runtime.replication")

#: Frame kinds of the replication protocol (see the module docstring).
REPLICATE = "REPLICATE"
REPLICATE_ACK = "RACK"
PROMOTE = "PROMOTE"
PROMOTED = "PROMOTED"
PROMOTE_FAILED = "PROMOTE_FAILED"

#: ``HELLO`` role marker a standby session is requested with (element 8
#: of the handshake tuple; absent or ``"primary"`` means a normal worker
#: session — version tolerance, older dialers simply send 8 elements).
STANDBY_ROLE = "standby"

#: Seconds between acked-LSN polls while a promotion waits for the
#: standby to drain the in-flight record tail.
_ACK_POLL_SECONDS = 0.002


# --------------------------------------------------------------------- #
# Record codec (validation on both sides of the wire)
# --------------------------------------------------------------------- #


def validate_records(records) -> Tuple[Tuple, ...]:
    """Validate the record list of a ``REPLICATE`` frame; returns tuples.

    Each record is ``(lsn, type, idx, op, data)`` — the WAL record plus
    its LSN.  Validation is strict on both the encode and decode side so
    a malformed frame is rejected *before* any record touches a replica's
    engine (the same fail-closed stance as the transport codec).

    Raises:
        WireProtocolError: a record has the wrong arity or field types.
    """
    if not isinstance(records, (tuple, list)):
        raise WireProtocolError(
            f"REPLICATE records must be a sequence, got {type(records).__name__}"
        )
    out = []
    for record in records:
        if not isinstance(record, (tuple, list)) or len(record) != 5:
            raise WireProtocolError(
                f"malformed replication record {record!r}: expected (lsn, type, idx, op, data)"
            )
        lsn, record_type, idx, op, data = record
        if isinstance(lsn, bool) or not isinstance(lsn, int) or lsn < 1:
            raise WireProtocolError(f"replication record LSN must be an int >= 1, got {lsn!r}")
        if record_type not in wal_mod.RECORD_TYPES:
            raise WireProtocolError(
                f"unknown replication record type {record_type!r}; "
                f"valid types: {', '.join(sorted(wal_mod.RECORD_TYPES))}"
            )
        if isinstance(idx, bool) or not isinstance(idx, int) or idx < 0:
            raise WireProtocolError(f"replication record idx must be an int >= 0, got {idx!r}")
        if isinstance(op, bool) or not isinstance(op, int) or op < 0:
            raise WireProtocolError(f"replication record op must be an int >= 0, got {op!r}")
        out.append((lsn, record_type, idx, op, data))
    return tuple(out)


def encode_replicate(records) -> bytes:
    """Frame a validated record batch as ``REPLICATE`` wire bytes."""
    return encode_frame((REPLICATE, validate_records(records)))


def decode_replicate(frame) -> Tuple[Tuple, ...]:
    """Validate a decoded ``REPLICATE`` frame; returns its records.

    The frame may carry an optional trailing trace-context element
    (ignored here — callers read it positionally), so only a minimum
    length is enforced.

    Raises:
        WireProtocolError: the frame is not a well-formed ``REPLICATE``.
    """
    if not isinstance(frame, tuple) or len(frame) < 2 or frame[0] != REPLICATE:
        raise WireProtocolError(f"malformed REPLICATE frame: {frame!r}")
    return validate_records(frame[1])


# --------------------------------------------------------------------- #
# Worker side: the muted apply loop
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PromotionHandoff:
    """What :func:`serve_standby` returns when the standby is promoted.

    Attributes:
        lsn: the record LSN the replica had applied when it was promoted
            (the coordinator's last acked LSN — verified equal).
        emit_results: whether the promoted serve loop should push live
            ``EVENTS`` frames (the coordinator's ``on_result`` setting).
    """

    lsn: int
    emit_results: bool


def serve_standby(server, sock, read_timeout: float, base_lsn: int) -> Optional[PromotionHandoff]:
    """Apply replicated records into a muted shard engine until promoted.

    Runs on the worker host inside a
    :class:`~repro.runtime.transport_tcp.TcpWorkerServer` session whose
    ``HELLO`` carried :data:`STANDBY_ROLE`.  Records are applied muted
    (results suppressed, state maintained) with strict LSN continuity
    from ``base_lsn``; each ``REPLICATE`` frame is acknowledged with the
    LSN reached, and a ``PROMOTE`` naming exactly that LSN flips the
    session into a primary: the function returns a
    :class:`PromotionHandoff` and the caller continues with the normal
    ``serve_shard`` loop *on the same socket and engine* — unmute at the
    promotion LSN, no replay.

    Returns ``None`` when the coordinator goes away (clean EOF): the
    standby's state is discarded and the worker process returns to
    listening.

    Raises:
        ReplicationError: the record stream has an LSN gap (lost or
            reordered records) — applying past it would desync the
            replica, so the session aborts instead.
        WireProtocolError: an unknown or malformed frame arrived.
        WorkerUnavailableError: the connection died mid-frame (torn or
            corrupt bytes); raised by the transport's frame reader.
    """
    applied = int(base_lsn)
    while True:
        got = recv_frame(sock, read_timeout, idle_ok=True)
        if got is None:
            return None
        frame, _ = got
        kind = frame[0] if isinstance(frame, tuple) and frame else None
        if kind == REPLICATE:
            records = decode_replicate(frame)
            for lsn, _, _, _, _ in records:
                if lsn != applied + 1:
                    raise ReplicationError(
                        f"replication stream gap on shard {server.shard_id}: expected "
                        f"LSN {applied + 1}, got {lsn}; records were lost or reordered, "
                        f"aborting the standby session instead of desyncing"
                    )
                applied = lsn
            server.apply_replica_records(
                ((record[1], record[4]) for record in records),
                ctx=frame[2] if len(frame) > 2 else None,
            )
            _send_all(sock, encode_frame((REPLICATE_ACK, applied)), read_timeout)
        elif kind == PROMOTE:
            if len(frame) < 3:
                raise WireProtocolError(f"malformed PROMOTE frame: {frame!r}")
            lsn, emit_results = frame[1], bool(frame[2])
            operation_id = frame[3] if len(frame) > 3 else None
            if lsn != applied:
                # A stale (or future) unmute LSN means the coordinator's
                # view of this replica is wrong; refuse loudly and stay a
                # standby rather than emit from the wrong stream position.
                _send_all(
                    sock,
                    encode_frame(
                        (
                            PROMOTE_FAILED,
                            applied,
                            f"stale promotion LSN {lsn}: this standby has applied {applied}",
                        )
                    ),
                    read_timeout,
                )
                continue
            _send_all(sock, encode_frame((PROMOTED, applied)), read_timeout)
            extra: Dict[str, object] = {"shard": server.shard_id}
            if operation_id is not None:
                extra["operation_id"] = operation_id
            _LOG.info(
                "shard %d: standby promoted to primary at LSN %d",
                server.shard_id,
                applied,
                extra=extra,
            )
            return PromotionHandoff(lsn=applied, emit_results=emit_results)
        else:
            raise WireProtocolError(
                f"unknown replication frame kind {kind!r} in a standby session"
            )


# --------------------------------------------------------------------- #
# Coordinator side: replica state + the log shipper
# --------------------------------------------------------------------- #


class StandbyReplica:
    """Coordinator-side state of one shard's armed hot standby.

    Plain attributes are updated by the coordinator thread (shipping,
    promotion) and the replica's ack-reader thread (``acked_lsn``,
    ``dead``); both sides stick to atomic attribute writes, and the
    promotion handshake serializes through :attr:`promoted_event`.
    """

    def __init__(self, shard_id: int, address: str, read_timeout: float) -> None:
        self.shard_id = shard_id
        self.address = address
        self.read_timeout = read_timeout
        self.sock: Optional[socket.socket] = None
        self.armed = False
        self.dead = False
        self.failure: Optional[str] = None
        self.expect_close = False
        self.base_lsn = 0
        self.sent_lsn = 0
        self.acked_lsn = 0
        self.shipped_records = 0
        self.buffer = []
        self.promoted_event = threading.Event()
        self.promoted_lsn: Optional[int] = None
        self.promote_refusal: Optional[str] = None
        self._reader: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        """Whether this replica is armed and its connection is healthy."""
        return self.armed and not self.dead

    def mark_dead(self, reason: str) -> None:
        """Record the replica's death (idempotent) and close its socket."""
        if self.dead:
            return
        self.dead = True
        self.failure = reason
        if not self.expect_close:
            _LOG.warning(
                "shard %d: lost hot standby at %s: %s",
                self.shard_id,
                self.address,
                reason,
                extra={"shard": self.shard_id},
            )
        self.close()

    def close(self) -> None:
        """Close the replication socket (safe to call repeatedly)."""
        sock = self.sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def start_reader(self) -> None:
        """Start the daemon thread consuming ``RACK``/promotion frames."""
        self._reader = threading.Thread(
            target=self._read_acks,
            name=f"repro-standby-ack-{self.shard_id}",
            daemon=True,
        )
        self._reader.start()

    def join_reader(self, timeout: Optional[float] = None) -> None:
        """Wait for the ack-reader thread to exit (after death or promotion)."""
        reader = self._reader
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=timeout if timeout is not None else self.read_timeout)

    def _read_acks(self) -> None:
        try:
            while True:
                got = recv_frame(self.sock, self.read_timeout, idle_ok=True)
                if got is None:
                    self.mark_dead("standby closed the replication connection")
                    return
                frame, _ = got
                kind = frame[0] if isinstance(frame, tuple) and frame else None
                if kind == REPLICATE_ACK:
                    self.acked_lsn = int(frame[1])
                elif kind == PROMOTED:
                    self.promoted_lsn = int(frame[1])
                    self.promoted_event.set()
                    return  # the socket now belongs to the promoted worker proxy
                elif kind == PROMOTE_FAILED:
                    applied = frame[1] if len(frame) > 1 else "?"
                    reason = frame[2] if len(frame) > 2 else ""
                    self.promote_refusal = f"standby at LSN {applied} refused promotion: {reason}"
                    self.promoted_event.set()
                else:
                    self.mark_dead(f"unexpected replication frame {kind!r} from standby")
                    return
        except (WorkerUnavailableError, WireProtocolError, OSError, ValueError, TypeError) as exc:
            self.mark_dead(str(exc))
            # Wake any promotion blocked on the event; it will observe
            # dead/promoted_lsn=None and raise.
            self.promoted_event.set()


class ReplicationManager:
    """The coordinator's log shipper: arms, feeds and promotes standbys.

    Owned by :class:`~repro.runtime.service.StreamingQueryService` when
    ``RuntimeConfig(standby_addresses=...)`` is set.  All methods are
    coordinator-thread only (the same single-consumer discipline as the
    worker proxies); the only concurrent actors are the per-replica ack
    readers, which touch nothing but their own replica's attributes.

    Args:
        window: the service's window specification (travels in standby
            ``HELLO`` handshakes).
        config: the service's runtime configuration; ``standby_addresses``
            names the initial standby fleet, ``batch_size`` sizes the
            shipping buffer, and the tcp timeouts govern the replication
            connections exactly as they govern primary connections.
    """

    def __init__(self, window: WindowSpec, config: RuntimeConfig) -> None:
        self.window = window
        self.config = config
        self._log_lsn: Dict[int, int] = {shard: 0 for shard in range(config.shards)}
        self._replicas: Dict[int, StandbyReplica] = {}
        self._rearm: Dict[int, str] = {}
        self._addresses: Dict[int, str] = {
            shard: address
            for shard, address in enumerate(config.standby_addresses or ())
            if address
        }
        self._flush_records = max(1, config.batch_size)
        # Per-shard trace context attached by the coordinator's sampler;
        # consumed (once) by the shard's next REPLICATE flush.
        self._trace_ctx: Dict[int, Tuple] = {}
        self.promotions = 0

    # Introspection ------------------------------------------------------ #

    def replica(self, shard: int) -> Optional[StandbyReplica]:
        """The shard's replica state, or ``None`` when never armed."""
        return self._replicas.get(shard)

    def log_lsn(self, shard: int) -> int:
        """The shard's record-stream head LSN (== its WAL LSN when logging)."""
        return self._log_lsn.get(shard, 0)

    def stats(self, shard: int) -> Dict[str, object]:
        """Replication gauges for one shard (for the metrics refresh)."""
        replica = self._replicas.get(shard)
        log_lsn = self._log_lsn.get(shard, 0)
        if replica is None or not replica.alive:
            return {
                "armed": False,
                "address": None if replica is None else replica.address,
                "acked_lsn": 0 if replica is None else replica.acked_lsn,
                "shipped_records": 0 if replica is None else replica.shipped_records,
                "lag_records": 0,
                "pending_rearm": shard in self._rearm,
            }
        return {
            "armed": True,
            "address": replica.address,
            "acked_lsn": replica.acked_lsn,
            "shipped_records": replica.shipped_records,
            "lag_records": max(0, log_lsn - replica.acked_lsn),
            "pending_rearm": False,
        }

    # Arming ------------------------------------------------------------- #

    def start(self, bootstraps: Dict[int, Tuple]) -> None:
        """Arm every configured standby; individual failures are non-fatal.

        A standby that cannot be armed (not listening, busy, handshake
        refused) degrades that shard to cold recovery — the service must
        still start, so the failure is logged and surfaced through the
        ``repro_standby_connected`` gauge rather than raised.
        """
        for shard, address in sorted(self._addresses.items()):
            try:
                self.arm(shard, address, bootstraps.get(shard, ()))
            except (ReplicationError, WorkerUnavailableError, OSError) as exc:
                _LOG.warning(
                    "shard %d: could not arm hot standby at %s: %s",
                    shard,
                    address,
                    exc,
                    extra={"shard": shard},
                )

    def arm(
        self,
        shard: int,
        address: str,
        bootstrap: Tuple,
        connect_attempts: Optional[int] = None,
    ) -> StandbyReplica:
        """Establish a standby session for one shard at ``address``.

        ``bootstrap`` must reconstruct the shard's engine state *at the
        current record LSN* — at service start that is the worker's
        pre-start bootstrap frames; mid-run (re-arming) it is a fresh set
        of ``RESTORE`` frames taken at a drain boundary, so the replica
        starts exactly where the shipped record stream resumes.

        Raises:
            ReplicationError: the shard already has a live standby, the
                worker at ``address`` is busy or refused the handshake,
                or it could not be reached.
        """
        existing = self._replicas.get(shard)
        if existing is not None and existing.alive:
            raise ReplicationError(
                f"shard {shard} already has an armed standby at {existing.address}"
            )
        parse_worker_address(address)
        base_lsn = self._log_lsn[shard]
        sock = self._dial(
            shard,
            address,
            self.config.tcp_connect_attempts if connect_attempts is None else connect_attempts,
        )
        try:
            hello = (
                "HELLO",
                WIRE_VERSION,
                shard,
                self.window.size,
                self.window.slide,
                self.config.to_dict(),
                tuple(bootstrap),
                False,
                STANDBY_ROLE,
                base_lsn,
            )
            _send_all(sock, encode_frame(hello), self.config.tcp_read_timeout)
            got = recv_frame(sock, self.config.tcp_connect_timeout)
            if got is None:
                raise ReplicationError(
                    f"worker at {address} closed during the standby handshake for shard {shard}"
                )
            welcome, _ = got
            if welcome and welcome[0] == "BUSY":
                raise ReplicationError(
                    f"worker at {address} is busy with another session and cannot host "
                    f"shard {shard}'s standby"
                )
            if len(welcome) < 2 or welcome[0] != "WELCOME" or welcome[1] != WIRE_VERSION:
                raise ReplicationError(
                    f"worker at {address} sent {welcome!r} instead of WELCOME "
                    f"to shard {shard}'s standby handshake"
                )
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        replica = StandbyReplica(shard, address, self.config.tcp_read_timeout)
        replica.sock = sock
        replica.base_lsn = base_lsn
        replica.sent_lsn = base_lsn
        replica.acked_lsn = base_lsn
        replica.armed = True
        self._replicas[shard] = replica
        self._rearm.pop(shard, None)
        replica.start_reader()
        _LOG.info(
            "shard %d: hot standby armed at %s from LSN %d",
            shard,
            address,
            base_lsn,
            extra={"shard": shard},
        )
        return replica

    def _dial(self, shard: int, address: str, attempts: int) -> socket.socket:
        """Connect to a standby address with the transport's backoff schedule."""
        host, port = parse_worker_address(address)
        last_error: Optional[Exception] = None
        for attempt in range(max(1, attempts)):
            if attempt:
                time.sleep(
                    min(self.config.tcp_connect_backoff * (2 ** (attempt - 1)), _BACKOFF_CAP_SECONDS)
                )
            try:
                sock = socket.create_connection((host, port), timeout=self.config.tcp_connect_timeout)
            except OSError as exc:
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            return sock
        raise ReplicationError(
            f"shard {shard}: cannot connect to standby at {address} "
            f"after {max(1, attempts)} attempts: {last_error}"
        )

    # Shipping ----------------------------------------------------------- #

    def ship_tuple(
        self, idx: int, wire, shards: Iterable[int], lsns: Optional[Dict[int, int]] = None
    ) -> None:
        """Ship one routed tuple record to every target shard's standby.

        ``lsns`` carries the per-shard WAL LSNs when durability logged the
        same record (keeping the two streams numerically identical); with
        durability off the manager assigns its own consecutive LSNs.
        """
        for shard in shards:
            lsn = self._advance(shard, None if lsns is None else lsns.get(shard))
            self._buffer(shard, (lsn, wal_mod.TUPLE, idx, 0, wire))

    def ship_topology(
        self, shard: int, record_type: str, idx: int, op: int, data, lsn: Optional[int] = None
    ) -> None:
        """Ship one topology record (register / restore / deregister).

        Topology records are rare and order-critical, so the shard's
        buffer is flushed eagerly — the standby is never more than one
        tuple batch behind a topology change.
        """
        assigned = self._advance(shard, lsn)
        self._buffer(shard, (assigned, record_type, idx, op, data))
        self.flush(shard)

    def _advance(self, shard: int, lsn: Optional[int]) -> int:
        if lsn is None:
            lsn = self._log_lsn[shard] + 1
        self._log_lsn[shard] = lsn
        return lsn

    def attach_context(self, shard: int, ctx: Tuple) -> None:
        """Attach a trace context to the shard's next ``REPLICATE`` flush.

        Called by the coordinator when a sampled tuple is shipped to the
        shard; the context rides the frame as an optional trailing
        element (never inside the records), so the standby's apply span
        joins the sampled trace.  One context per flush: a second attach
        before the flush simply replaces the first.
        """
        self._trace_ctx[shard] = ctx

    def _buffer(self, shard: int, record: Tuple) -> None:
        replica = self._replicas.get(shard)
        if replica is None or not replica.alive:
            return
        replica.buffer.append(record)
        if len(replica.buffer) >= self._flush_records:
            self.flush(shard)

    def flush(self, shard: int) -> None:
        """Send the shard's buffered records as one ``REPLICATE`` frame.

        A send failure kills the replica (replication is best-effort
        until a promotion is requested) — the service keeps running on
        the primary and the loss is visible in the standby gauges.
        """
        replica = self._replicas.get(shard)
        if replica is None or not replica.alive or not replica.buffer:
            return
        records = tuple(replica.buffer)
        replica.buffer.clear()
        ctx = self._trace_ctx.pop(shard, None)
        frame = (REPLICATE, records) if ctx is None else (REPLICATE, records, ctx)
        try:
            # The records were built by ship_tuple/ship_topology, so skip
            # encode_replicate's re-validation on this hot path; the
            # standby still validates strictly on decode.
            _send_all(replica.sock, encode_frame(frame), replica.read_timeout)
        except (WorkerUnavailableError, OSError) as exc:
            replica.mark_dead(f"shipping records failed: {exc}")
            return
        replica.sent_lsn = records[-1][0]
        replica.shipped_records += len(records)

    def flush_all(self) -> None:
        """Flush every armed replica's buffer (drain / checkpoint barrier)."""
        for shard in list(self._replicas):
            self.flush(shard)

    # Promotion ---------------------------------------------------------- #

    def promote(
        self,
        shard: int,
        emit_results: bool,
        timeout: Optional[float] = None,
        operation_id: Optional[str] = None,
    ) -> Tuple[socket.socket, Dict[str, object]]:
        """Promote the shard's standby; returns its socket + promotion facts.

        The returned socket carries a live, unmuted ``serve_shard``
        session positioned at exactly the promotion LSN; the caller wraps
        it in a worker proxy (``TcpShardWorker.adopt_session``).  The
        facts dict records ``lsn``, ``waited_records`` (the in-flight
        tail the promotion had to wait out — shipping lag, not replay)
        and ``replayed_records`` (structurally ``0``: a warm promotion
        never re-reads the WAL).  ``operation_id`` correlates every log
        line of the promotion — on both ends of the wire: it rides the
        ``PROMOTE`` frame as an optional trailing element.

        Raises:
            ReplicationError: there is no live standby, it died or lagged
                past ``timeout`` while promoting, or it refused the
                promotion LSN.
        """
        replica = self._replicas.get(shard)
        if replica is None or not replica.armed:
            raise ReplicationError(f"shard {shard} has no armed hot standby to promote")
        if replica.dead:
            raise ReplicationError(
                f"shard {shard}'s standby at {replica.address} is dead: {replica.failure}"
            )
        wait_timeout = timeout if timeout is not None else replica.read_timeout
        started = time.perf_counter()
        target = self._log_lsn[shard]
        acked_at_entry = replica.acked_lsn
        self.flush(shard)
        deadline = time.monotonic() + wait_timeout
        while replica.acked_lsn < target:
            if replica.dead:
                raise ReplicationError(
                    f"shard {shard}'s standby at {replica.address} died while promoting: "
                    f"{replica.failure}"
                )
            if time.monotonic() > deadline:
                raise ReplicationError(
                    f"shard {shard}'s standby at {replica.address} did not reach LSN "
                    f"{target} within {wait_timeout:.1f}s (acked {replica.acked_lsn})"
                )
            time.sleep(_ACK_POLL_SECONDS)
        promote_frame: Tuple = (PROMOTE, target, bool(emit_results))
        if operation_id is not None:
            promote_frame += (operation_id,)
        try:
            _send_all(
                replica.sock,
                encode_frame(promote_frame),
                replica.read_timeout,
            )
        except (WorkerUnavailableError, OSError) as exc:
            replica.mark_dead(f"PROMOTE send failed: {exc}")
            raise ReplicationError(
                f"shard {shard}: could not send PROMOTE to standby at {replica.address}: {exc}"
            ) from exc
        if not replica.promoted_event.wait(wait_timeout):
            replica.mark_dead("promotion timed out")
            raise ReplicationError(
                f"shard {shard}'s standby at {replica.address} did not confirm "
                f"promotion within {wait_timeout:.1f}s"
            )
        if replica.promoted_lsn is None:
            replica.promoted_event.clear()
            if replica.dead:
                raise ReplicationError(
                    f"shard {shard}'s standby at {replica.address} died while promoting: "
                    f"{replica.failure}"
                )
            raise ReplicationError(f"shard {shard}: {replica.promote_refusal}")
        replica.join_reader()
        sock = replica.sock
        replica.sock = None
        replica.armed = False
        del self._replicas[shard]
        self.promotions += 1
        facts: Dict[str, object] = {
            "shard": shard,
            "address": replica.address,
            "lsn": target,
            "waited_records": max(0, target - acked_at_entry),
            "replayed_records": 0,
            "seconds": time.perf_counter() - started,
        }
        extra: Dict[str, object] = {"shard": shard}
        if operation_id is not None:
            extra["operation_id"] = operation_id
        _LOG.info(
            "shard %d: promoted hot standby at %s at LSN %d "
            "(waited on %d in-flight records, replayed 0)",
            shard,
            replica.address,
            target,
            facts["waited_records"],
            extra=extra,
        )
        return sock, facts

    # Re-arming ---------------------------------------------------------- #

    def schedule_rearm(self, shard: int, address: str) -> None:
        """Remember an address to arm a fresh standby for ``shard`` at.

        Promotion schedules the *old primary's* address here: once the
        operator restarts a worker process on it, the next drain boundary
        (or an explicit ``rearm_standby``) arms it as the shard's new
        standby.
        """
        self._rearm[shard] = address

    def pending_rearms(self) -> Dict[int, str]:
        """Shards whose standby is waiting to be re-armed, by address."""
        return dict(self._rearm)

    # Shutdown ----------------------------------------------------------- #

    def stop(self) -> None:
        """Close every replication connection (standbys discard their state)."""
        for replica in list(self._replicas.values()):
            replica.expect_close = True
            replica.close()
            replica.join_reader()
        self._replicas.clear()
