"""Regeneration of every figure in the paper's evaluation (§5).

Each ``figureN`` function runs the corresponding experiment at a reduced
(laptop) scale and returns one or more
:class:`~repro.metrics.reporting.Figure` objects whose series mirror the
series plotted in the paper.  The benchmark modules under ``benchmarks/``
print these figures; EXPERIMENTS.md records the measured output next to the
paper's reported shape.

Absolute numbers differ from the paper (single-threaded pure Python versus
a 32-core Java prototype), but the comparisons the paper draws — which
queries are slow, how latency scales with the window, how the baseline
compares — are preserved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datasets import GMarkQueryGenerator, applicable_queries, build_workload, default_social_schema
from ..graph.stream import ListStream, with_deletions
from ..graph.window import WindowSpec
from ..metrics.reporting import Figure
from ..regex.analysis import analyze
from .harness import RunResult, compare_runs, run_query
from .workloads import DATASET_NAMES, dataset_config

__all__ = [
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
]

#: Query subset used by the parameter sweeps (Figures 6 and 10) to keep the
#: sweep affordable; the paper plots all eleven queries but their curves are
#: parallel, so a representative subset preserves the shape.
SWEEP_QUERIES: List[str] = ["Q1", "Q2", "Q4", "Q7", "Q11"]


def _run_workload(
    dataset: str,
    scale: str,
    queries: Optional[Iterable[str]] = None,
    semantics: str = "arbitrary",
    window: Optional[WindowSpec] = None,
    stream: Optional[ListStream] = None,
) -> Dict[str, RunResult]:
    """Run the Table 2 workload of ``dataset`` and return per-query results."""
    config = dataset_config(dataset, scale)
    workload = build_workload(dataset)
    names = list(queries) if queries is not None else applicable_queries(dataset)
    stream = stream if stream is not None else config.stream()
    window = window if window is not None else config.window
    results: Dict[str, RunResult] = {}
    for name in names:
        if name not in workload:
            continue
        results[name] = run_query(
            workload[name],
            stream,
            window,
            semantics=semantics,
            query_name=name,
            dataset=dataset,
        )
    return results


# --------------------------------------------------------------------------- #
# Figure 4 — throughput and tail latency per query per dataset
# --------------------------------------------------------------------------- #

def figure4(scale: str = "small", datasets: Sequence[str] = tuple(DATASET_NAMES)) -> Dict[str, Figure]:
    """Throughput and p99 latency of Algorithm RAPQ for all queries (Fig. 4).

    Returns one Figure per dataset with two series, ``throughput_eps`` and
    ``tail_latency_us``, indexed by query name.
    """
    figures: Dict[str, Figure] = {}
    for dataset in datasets:
        figure = Figure(
            name=f"Figure 4 ({dataset})",
            x_label="query",
            description="RAPQ throughput (edges/s) and tail latency (us)",
        )
        for name, result in _run_workload(dataset, scale).items():
            figure.add_point("throughput_eps", name, result.throughput_eps)
            figure.add_point("tail_latency_us", name, result.tail_latency_us)
        figures[dataset] = figure
    return figures


# --------------------------------------------------------------------------- #
# Figure 5 — Delta index size on the StackOverflow graph
# --------------------------------------------------------------------------- #

def figure5(scale: str = "small") -> Figure:
    """Size of the Delta tree index per query on the SO graph (Fig. 5)."""
    figure = Figure(
        name="Figure 5",
        x_label="query",
        description="Delta index size on the StackOverflow-like graph",
    )
    for name, result in _run_workload("stackoverflow", scale).items():
        figure.add_point("num_trees", name, result.index_trees)
        figure.add_point("num_nodes", name, result.index_nodes)
        figure.add_point("throughput_eps", name, result.throughput_eps)
    return figure


# --------------------------------------------------------------------------- #
# Figure 6 — sensitivity to window size and slide interval
# --------------------------------------------------------------------------- #

def figure6(
    scale: str = "small",
    queries: Sequence[str] = tuple(SWEEP_QUERIES),
    window_sizes: Optional[Sequence[int]] = None,
    slide_intervals: Optional[Sequence[int]] = None,
) -> Dict[str, Figure]:
    """Tail latency and expiry time versus |W| and beta on the Yago-like graph.

    Returns four figures: ``latency_vs_window``, ``expiry_vs_window``,
    ``latency_vs_slide`` and ``expiry_vs_slide`` (the four panels of
    Figure 6).
    """
    config = dataset_config("yago", scale)
    stream = config.stream()
    workload = build_workload("yago")
    base_window = config.window
    if window_sizes is None:
        window_sizes = [
            base_window.size // 2, base_window.size, base_window.size * 3 // 2, base_window.size * 2
        ]
    if slide_intervals is None:
        slide_intervals = [
            max(1, base_window.slide // 2), base_window.slide, base_window.slide * 2, base_window.slide * 4
        ]

    latency_window = Figure("Figure 6(a) latency vs |W|", "window_size", "p99 latency (us) vs window size")
    expiry_window = Figure(
        "Figure 6(b) expiry vs |W|", "window_size", "expiry time per run (us) vs window size"
    )
    latency_slide = Figure("Figure 6(a) latency vs beta", "slide", "p99 latency (us) vs slide interval")
    expiry_slide = Figure("Figure 6(b) expiry vs beta", "slide", "expiry time per run (us) vs slide interval")

    for name in queries:
        if name not in workload:
            continue
        for size in window_sizes:
            result = run_query(
                workload[name],
                stream,
                WindowSpec(size=size, slide=base_window.slide),
                query_name=name,
                dataset="yago",
            )
            latency_window.add_point(name, size, result.tail_latency_us)
            expiry_window.add_point(name, size, result.expiry_time_per_run_us())
        for slide in slide_intervals:
            result = run_query(
                workload[name],
                stream,
                WindowSpec(size=base_window.size, slide=slide),
                query_name=name,
                dataset="yago",
            )
            latency_slide.add_point(name, slide, result.tail_latency_us)
            expiry_slide.add_point(name, slide, result.expiry_time_per_run_us())

    return {
        "latency_vs_window": latency_window,
        "expiry_vs_window": expiry_window,
        "latency_vs_slide": latency_slide,
        "expiry_vs_slide": expiry_slide,
    }


# --------------------------------------------------------------------------- #
# Figure 7 — DFA size versus query size for the gMark workload
# --------------------------------------------------------------------------- #

def figure7(num_queries: int = 100, min_size: int = 2, max_size: int = 20, seed: int = 67) -> Figure:
    """Number of DFA states versus query size for synthetic RPQs (Fig. 7)."""
    schema = default_social_schema()
    generator = GMarkQueryGenerator(labels=schema.labels(), seed=seed)
    workload = generator.generate_workload(num_queries, min_size=min_size, max_size=max_size)
    figure = Figure(
        name="Figure 7",
        x_label="query_size",
        description="minimal-DFA states vs query size (gMark workload)",
    )
    totals: Dict[int, List[int]] = {}
    for requested_size, expression in workload:
        analysis = analyze(expression)
        actual_size = analysis.expression.size()
        totals.setdefault(actual_size, []).append(analysis.num_states)
        figure.add_point("max_states", actual_size, max(
            analysis.num_states, figure.get("max_states").get(actual_size, 0)
        ))
    for size, states in sorted(totals.items()):
        figure.add_point("mean_states", size, sum(states) / len(states))
    return figure


# --------------------------------------------------------------------------- #
# Figures 8 and 9 — throughput versus automaton size / index size
# --------------------------------------------------------------------------- #

def _gmark_runs(
    scale: str,
    num_queries: int,
    seed: int,
) -> List[Tuple[int, RunResult]]:
    """Run a gMark query workload over the gMark graph; return (k, result) pairs."""
    config = dataset_config("gmark", scale)
    stream = config.stream()
    schema = default_social_schema()
    generator = GMarkQueryGenerator(labels=schema.labels(), seed=seed)
    workload = generator.generate_workload(num_queries, min_size=2, max_size=12)
    runs: List[Tuple[int, RunResult]] = []
    for index, (_, expression) in enumerate(workload):
        analysis = analyze(expression)
        result = run_query(
            analysis,
            stream,
            config.window,
            query_name=f"gmark-{index}",
            dataset="gmark",
        )
        runs.append((analysis.num_states, result))
    return runs


def figure8(scale: str = "small", num_queries: int = 20, seed: int = 67) -> Figure:
    """Throughput of RAPQ versus automaton size k on the gMark workload (Fig. 8)."""
    figure = Figure(
        name="Figure 8",
        x_label="num_states",
        description="RAPQ throughput (edges/s) vs automaton size k (gMark)",
    )
    by_k: Dict[int, List[float]] = {}
    for k, result in _gmark_runs(scale, num_queries, seed):
        if result.relevant_tuples == 0:
            continue
        by_k.setdefault(k, []).append(result.throughput_eps)
    for k, values in sorted(by_k.items()):
        figure.add_point("mean_throughput_eps", k, sum(values) / len(values))
        figure.add_point("min_throughput_eps", k, min(values))
        figure.add_point("max_throughput_eps", k, max(values))
    return figure


def figure9(scale: str = "small", num_queries: int = 30, seed: int = 67, k: int = 5) -> Figure:
    """Throughput versus Delta index size for queries with a fixed k (Fig. 9).

    The paper fixes k = 5; if fewer than three generated queries have that
    automaton size, the most common size in the workload is used instead so
    the negative correlation can still be observed.
    """
    runs = _gmark_runs(scale, num_queries, seed)
    by_k: Dict[int, List[RunResult]] = {}
    for states, result in runs:
        if result.relevant_tuples > 0:
            by_k.setdefault(states, []).append(result)
    chosen_k = k
    if len(by_k.get(k, [])) < 3 and by_k:
        chosen_k = max(by_k, key=lambda key: len(by_k[key]))
    figure = Figure(
        name="Figure 9",
        x_label="index_nodes",
        description=f"throughput vs Delta index size for queries with k={chosen_k} (gMark)",
    )
    for result in by_k.get(chosen_k, []):
        figure.add_point("throughput_eps", result.index_nodes, result.throughput_eps)
    return figure


# --------------------------------------------------------------------------- #
# Figure 10 — impact of explicit deletions
# --------------------------------------------------------------------------- #

def figure10(
    scale: str = "small",
    queries: Sequence[str] = tuple(SWEEP_QUERIES),
    deletion_ratios: Sequence[float] = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10),
) -> Figure:
    """Tail latency versus explicit-deletion ratio on the Yago-like graph (Fig. 10)."""
    config = dataset_config("yago", scale)
    base_stream = config.stream()
    workload = build_workload("yago")
    figure = Figure(
        name="Figure 10",
        x_label="deletion_ratio",
        description="p99 latency (us) vs fraction of explicit deletions (Yago-like)",
    )
    for ratio in deletion_ratios:
        if ratio > 0:
            stream = ListStream(with_deletions(base_stream, ratio, seed=11), validate_order=False)
        else:
            stream = base_stream
        for name in queries:
            if name not in workload:
                continue
            result = run_query(
                workload[name],
                stream,
                config.window,
                query_name=name,
                dataset="yago",
            )
            figure.add_point(name, ratio, result.tail_latency_us)
    return figure


# --------------------------------------------------------------------------- #
# Figure 11 — speed-up over the recomputation baseline
# --------------------------------------------------------------------------- #

def figure11(
    scale: str = "tiny",
    queries: Optional[Sequence[str]] = None,
) -> Figure:
    """Speed-up of RAPQ over per-tuple window recomputation (Fig. 11).

    The baseline re-evaluates the query over the whole window after every
    tuple (the paper's Virtuoso emulation), so this experiment uses the
    smaller ``tiny`` scale by default.
    """
    config = dataset_config("yago", scale)
    stream = config.stream()
    workload = build_workload("yago")
    names = list(queries) if queries is not None else applicable_queries("yago")
    figure = Figure(
        name="Figure 11",
        x_label="query",
        description="speed-up of RAPQ over snapshot recomputation (Yago-like)",
    )
    for name in names:
        incremental = run_query(
            workload[name],
            stream,
            config.window,
            semantics="arbitrary",
            query_name=name,
            dataset="yago",
        )
        baseline = run_query(
            workload[name],
            stream,
            config.window,
            semantics="baseline",
            query_name=name,
            dataset="yago",
        )
        comparison = compare_runs(incremental, baseline)
        figure.add_point("relative_throughput", name, comparison.get("throughput_speedup", 0.0))
        figure.add_point("relative_tail_latency", name, comparison.get("tail_latency_speedup", 0.0))
    return figure
