"""Experiment harness: runs an evaluator over a stream and measures it.

This is the measurement loop behind every figure and table of §5.  Given an
evaluator (RAPQ, RSPQ or the recomputation baseline) and a stream, it

* times the processing of every tuple whose label is relevant to the query
  (the paper measures only those, §5.2);
* records throughput, mean and tail (p99) latency;
* extracts window-management (expiry) time and Delta index size from the
  evaluator's statistics;
* converts :class:`~repro.errors.ConflictBudgetExceeded` into a
  "did not complete" outcome instead of propagating, so Table 4 can report
  which queries are feasible under simple path semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.engine import make_evaluator
from ..errors import ConflictBudgetExceeded
from ..graph.stream import GraphStream
from ..graph.tuples import StreamingGraphTuple
from ..graph.window import WindowSpec
from ..metrics.collectors import LatencyCollector
from ..regex.analysis import QueryAnalysis, analyze

__all__ = ["RunResult", "run_evaluator", "run_query", "compare_runs"]


@dataclass
class RunResult:
    """Outcome of one (query, dataset, evaluator) experiment run.

    All latency figures are in microseconds, matching the paper's plots;
    throughput is in edges (relevant tuples) per second.
    """

    query_name: str
    dataset: str
    semantics: str
    completed: bool
    num_tuples: int = 0
    relevant_tuples: int = 0
    distinct_results: int = 0
    throughput_eps: float = 0.0
    mean_latency_us: float = 0.0
    tail_latency_us: float = 0.0
    expiry_seconds: float = 0.0
    expiry_runs: int = 0
    index_trees: int = 0
    index_nodes: int = 0
    automaton_states: int = 0
    error: Optional[str] = None

    def expiry_time_per_run_us(self) -> float:
        """Average time of one expiry pass, in microseconds (Figure 6(b))."""
        if self.expiry_runs == 0:
            return 0.0
        return self.expiry_seconds / self.expiry_runs * 1e6

    def as_row(self) -> List[object]:
        """Row representation used by the text reports."""
        return [
            self.query_name,
            self.dataset,
            self.semantics,
            "ok" if self.completed else f"failed ({self.error})",
            self.relevant_tuples,
            self.distinct_results,
            round(self.throughput_eps, 1),
            round(self.tail_latency_us, 1),
            self.index_nodes,
        ]


def run_evaluator(
    evaluator,
    stream: Union[GraphStream, Sequence[StreamingGraphTuple]],
    query_name: str = "query",
    dataset: str = "stream",
    semantics: str = "arbitrary",
    latency_collector: Optional[LatencyCollector] = None,
) -> RunResult:
    """Drive ``evaluator`` over ``stream`` and measure it.

    Irrelevant tuples (labels outside the query alphabet) are passed to the
    evaluator (it discards them) but excluded from the latency statistics.
    """
    latencies = latency_collector if latency_collector is not None else LatencyCollector()
    num_tuples = 0
    relevant = 0
    completed = True
    error: Optional[str] = None
    try:
        for tup in stream:
            num_tuples += 1
            if evaluator.relevant(tup):
                relevant += 1
                started = time.perf_counter()
                evaluator.process(tup)
                latencies.record(time.perf_counter() - started)
            else:
                evaluator.process(tup)
    except ConflictBudgetExceeded as exc:
        completed = False
        error = str(exc)

    stats = dict(getattr(evaluator, "stats", {}))
    index = evaluator.index_size()
    result = RunResult(
        query_name=query_name,
        dataset=dataset,
        semantics=semantics,
        completed=completed,
        num_tuples=num_tuples,
        relevant_tuples=relevant,
        distinct_results=len(evaluator.answer_pairs()),
        automaton_states=evaluator.analysis.num_states,
        expiry_seconds=float(stats.get("expiry_seconds", 0.0)),
        expiry_runs=int(stats.get("expiry_runs", 0)),
        index_trees=int(index.get("trees", 0)),
        index_nodes=int(index.get("nodes", 0)),
        error=error,
    )
    if len(latencies) > 0:
        summary = latencies.summary()
        result.throughput_eps = summary["throughput_eps"]
        result.mean_latency_us = summary["mean_us"]
        result.tail_latency_us = summary["tail_us"]
    return result


def run_query(
    query: Union[str, QueryAnalysis],
    stream: Union[GraphStream, Sequence[StreamingGraphTuple]],
    window: WindowSpec,
    semantics: str = "arbitrary",
    query_name: str = "query",
    dataset: str = "stream",
    max_nodes_per_tree: Optional[int] = None,
) -> RunResult:
    """Convenience wrapper: build the evaluator for ``semantics`` and run it."""
    analysis = query if isinstance(query, QueryAnalysis) else analyze(query)
    evaluator = make_evaluator(analysis, window, semantics, max_nodes_per_tree)
    return run_evaluator(
        evaluator,
        stream,
        query_name=query_name,
        dataset=dataset,
        semantics=semantics,
    )


def compare_runs(reference: RunResult, candidate: RunResult) -> Dict[str, float]:
    """Compute relative speed-ups of ``reference`` over ``candidate``.

    Used for Figure 11 (incremental vs recomputation) and Table 4
    (simple-path overhead = candidate latency / reference latency).
    """
    comparison: Dict[str, float] = {}
    if candidate.throughput_eps > 0:
        comparison["throughput_speedup"] = reference.throughput_eps / candidate.throughput_eps
    if reference.tail_latency_us > 0:
        comparison["tail_latency_speedup"] = candidate.tail_latency_us / reference.tail_latency_us
    if reference.mean_latency_us > 0:
        comparison["mean_latency_overhead"] = candidate.mean_latency_us / reference.mean_latency_us
    return comparison
