"""Experiment harness regenerating the paper's evaluation (tables and figures)."""

from .figures import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from .harness import RunResult, compare_runs, run_evaluator, run_query
from .tables import (
    Table1Row,
    Table4Row,
    render_table1,
    render_table4,
    table1_complexity_check,
    table4_simple_path,
)
from .workloads import DATASET_NAMES, SCALES, DatasetConfig, dataset_config, dataset_stream

__all__ = [
    "DATASET_NAMES",
    "DatasetConfig",
    "RunResult",
    "SCALES",
    "Table1Row",
    "Table4Row",
    "compare_runs",
    "dataset_config",
    "dataset_stream",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "render_table1",
    "render_table4",
    "run_evaluator",
    "run_query",
    "table1_complexity_check",
    "table4_simple_path",
]
