"""Standard experiment workloads: datasets, windows and scales.

Each figure of §5 runs the Table 2 queries over one or more datasets with a
default window.  This module centralizes those defaults so the figure
functions, the benchmarks and the tests all agree on them, and provides a
single knob (``scale``) to shrink or grow every experiment uniformly.

Scales:

* ``"tiny"``   — seconds-long runs used by the integration tests;
* ``"small"``  — the default for ``pytest benchmarks/`` (a few minutes total);
* ``"medium"`` — closer to the paper's relative window sizes; slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..datasets import (
    GMarkGraphGenerator,
    LDBCLikeGenerator,
    StackOverflowGenerator,
    YagoLikeGenerator,
    default_social_schema,
)
from ..graph.stream import ListStream
from ..graph.window import WindowSpec

__all__ = ["DatasetConfig", "SCALES", "dataset_config", "dataset_stream", "DATASET_NAMES"]

#: Datasets used by the evaluation, in the order of Figure 4.
DATASET_NAMES: List[str] = ["yago", "ldbc", "stackoverflow"]

#: Stream sizes per scale, per dataset.
SCALES: Dict[str, Dict[str, int]] = {
    "tiny": {"yago": 1200, "ldbc": 1200, "stackoverflow": 800, "gmark": 1200},
    "small": {"yago": 6000, "ldbc": 5000, "stackoverflow": 4000, "gmark": 6000},
    "medium": {"yago": 20000, "ldbc": 16000, "stackoverflow": 12000, "gmark": 20000},
}


@dataclass(frozen=True)
class DatasetConfig:
    """A dataset with its default window for the experiments."""

    name: str
    num_edges: int
    window: WindowSpec
    make_stream: Callable[[int], ListStream]

    def stream(self) -> ListStream:
        """Materialize the dataset stream at the configured size."""
        return self.make_stream(self.num_edges)


def _make_generator(name: str, seed: int):
    if name == "stackoverflow":
        return StackOverflowGenerator(seed=seed)
    if name == "ldbc":
        return LDBCLikeGenerator(seed=seed)
    if name == "yago":
        return YagoLikeGenerator(seed=seed)
    if name == "gmark":
        return GMarkGraphGenerator(schema=default_social_schema(), seed=seed)
    raise KeyError(f"unknown dataset {name!r}; known: {DATASET_NAMES + ['gmark']}")


def dataset_config(name: str, scale: str = "small", seed: int = 7) -> DatasetConfig:
    """Return the :class:`DatasetConfig` of ``name`` at ``scale``.

    The default windows follow the paper's proportions: each window holds
    roughly a third of the stream's time range and slides in ten steps per
    window (eager evaluation, lazy expiry).
    """
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    sizes = SCALES[scale]
    if name not in sizes:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(sizes)}")
    num_edges = sizes[name]
    generator = _make_generator(name, seed)
    # All generators assign ~20-25 edges per timestamp, so the stream spans
    # roughly num_edges / edges_per_timestamp time units.
    edges_per_timestamp = getattr(generator, "edges_per_timestamp", 20)
    duration = max(10, num_edges // edges_per_timestamp)
    window_size = max(10, duration // 3)
    slide = max(1, window_size // 10)
    return DatasetConfig(
        name=name,
        num_edges=num_edges,
        window=WindowSpec(size=window_size, slide=slide),
        make_stream=lambda n, gen=generator: gen.generate(n),
    )


def dataset_stream(name: str, scale: str = "small", seed: int = 7) -> ListStream:
    """Shorthand: materialize the stream of ``name`` at ``scale``."""
    return dataset_config(name, scale, seed).stream()
