"""Regeneration of the paper's tables (Table 1 scaling check and Table 4).

* :func:`table1_complexity_check` — the paper's Table 1 states amortized
  costs (O(n·k²) per insertion, O(n²·k) per deletion).  We cannot measure a
  big-O, but we can verify the *scaling shape*: mean per-tuple latency
  should grow roughly linearly with the number of vertices in the window
  and stay polynomial in k.  The function sweeps the window size and
  reports the measured mean latencies together with the window vertex
  counts.

* :func:`table4_simple_path` — which Table 2 queries can be evaluated
  under simple path semantics on each dataset, and the latency overhead of
  doing so relative to arbitrary path semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..datasets import applicable_queries, build_workload
from ..graph.window import WindowSpec
from ..metrics.reporting import format_table
from .harness import run_query
from .workloads import DATASET_NAMES, dataset_config

__all__ = [
    "Table1Row",
    "Table4Row",
    "table1_complexity_check",
    "table4_simple_path",
    "render_table1",
    "render_table4",
]

#: Node budget for a single RSPQ spanning tree; exceeding it classifies the
#: query as "cannot be evaluated under simple path semantics" (Table 4).
RSPQ_NODE_BUDGET = 200_000


@dataclass
class Table1Row:
    """One measurement of the insertion-cost scaling check."""

    query_name: str
    window_size: int
    window_vertices: int
    automaton_states: int
    mean_latency_us: float
    tail_latency_us: float


def table1_complexity_check(
    scale: str = "small",
    queries: Sequence[str] = ("Q1", "Q2", "Q7"),
    window_multipliers: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
) -> List[Table1Row]:
    """Measure how per-tuple cost scales with the window size (Table 1 check).

    A larger window holds more vertices (larger n), so the amortized
    O(n·k²) bound predicts roughly linear growth of the mean insertion
    latency in the window size; the rows returned here let the benchmark
    verify that shape.
    """
    config = dataset_config("yago", scale)
    stream = config.stream()
    workload = build_workload("yago")
    rows: List[Table1Row] = []
    for name in queries:
        if name not in workload:
            continue
        for multiplier in window_multipliers:
            size = max(2, int(config.window.size * multiplier))
            window = WindowSpec(size=size, slide=config.window.slide)
            result = run_query(workload[name], stream, window, query_name=name, dataset="yago")
            rows.append(
                Table1Row(
                    query_name=name,
                    window_size=size,
                    window_vertices=result.index_trees,
                    automaton_states=result.automaton_states,
                    mean_latency_us=result.mean_latency_us,
                    tail_latency_us=result.tail_latency_us,
                )
            )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the Table 1 scaling check as text."""
    return format_table(
        ["query", "|W|", "trees(~n)", "k", "mean latency (us)", "p99 latency (us)"],
        [
            [row.query_name, row.window_size, row.window_vertices, row.automaton_states,
             row.mean_latency_us, row.tail_latency_us]
            for row in rows
        ],
        title="Table 1 — insertion-cost scaling with window size",
    )


@dataclass
class Table4Row:
    """Feasibility and overhead of simple-path evaluation for one query/dataset."""

    dataset: str
    query_name: str
    successful: bool
    arbitrary_tail_us: float
    simple_tail_us: float
    overhead: Optional[float]
    conflicts: int = 0

    @property
    def overhead_text(self) -> str:
        """Human-readable overhead (e.g. ``1.8x``) or ``-`` when not successful."""
        if not self.successful or self.overhead is None:
            return "-"
        return f"{self.overhead:.1f}x"


def table4_simple_path(
    scale: str = "small",
    datasets: Sequence[str] = tuple(DATASET_NAMES),
    queries: Optional[Sequence[str]] = None,
    node_budget: int = RSPQ_NODE_BUDGET,
) -> List[Table4Row]:
    """Evaluate every query under both semantics and report feasibility/overhead."""
    rows: List[Table4Row] = []
    for dataset in datasets:
        config = dataset_config(dataset, scale)
        stream = config.stream()
        workload = build_workload(dataset)
        names = list(queries) if queries is not None else applicable_queries(dataset)
        for name in names:
            if name not in workload:
                continue
            arbitrary = run_query(
                workload[name],
                stream,
                config.window,
                semantics="arbitrary",
                query_name=name,
                dataset=dataset,
            )
            simple = run_query(
                workload[name],
                stream,
                config.window,
                semantics="simple",
                query_name=name,
                dataset=dataset,
                max_nodes_per_tree=node_budget,
            )
            overhead = None
            if simple.completed and arbitrary.tail_latency_us > 0:
                overhead = simple.tail_latency_us / arbitrary.tail_latency_us
            rows.append(
                Table4Row(
                    dataset=dataset,
                    query_name=name,
                    successful=simple.completed,
                    arbitrary_tail_us=arbitrary.tail_latency_us,
                    simple_tail_us=simple.tail_latency_us,
                    overhead=overhead,
                )
            )
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    """Render Table 4 (successful queries and slowdown) as text."""
    return format_table(
        ["dataset", "query", "simple-path ok", "RAPQ p99 (us)", "RSPQ p99 (us)", "overhead"],
        [
            [row.dataset, row.query_name, "yes" if row.successful else "no",
             row.arbitrary_tail_us, row.simple_tail_us, row.overhead_text]
            for row in rows
        ],
        title="Table 4 — RPQ evaluation under simple path semantics",
    )
