"""Command-line interface for the streaming RPQ library.

Usage (after ``pip install -e .`` or with ``PYTHONPATH=src``)::

    python -m repro compile  --query "(follows mentions)+"
    python -m repro generate --dataset yago --edges 5000 --output yago.csv
    python -m repro run      --query "isLocatedIn+" --input yago.csv \
                             --window 40 --slide 4 --semantics arbitrary
    python -m repro run      --query "isLocatedIn+" --input yago.csv \
                             --window 40 --shards 4
    python -m repro serve    --input yago.csv --window 40 --shards 4 \
                             --query "places=isLocatedIn+" --query "deals=dealsWith+" \
                             --rebalance load_aware --checkpoint state.json
    python -m repro run      --query "isLocatedIn+" --input yago.csv \
                             --window 40 --shards 4 --partitions 4
    python -m repro serve    --input yago.csv --window 40 --shards 4 \
                             --query "places=isLocatedIn+" \
                             --wal state/ --checkpoint-interval 5000 --fsync batch
    python -m repro recover  --wal state/ --output recovered.json
    python -m repro worker   --listen 127.0.0.1:7300
    python -m repro serve    --input yago.csv --window 40 --shards 2 --backend tcp \
                             --query "places=isLocatedIn+" \
                             --worker 127.0.0.1:7300 --worker 127.0.0.1:7301
    python -m repro migrate  --checkpoint state.json --query places --to-shard 2
    python -m repro split    --checkpoint state.json --query places --partitions 4
    python -m repro trace    --query "isLocatedIn+" --input yago.csv \
                             --window 40 --shards 2 --out trace.json
    python -m repro experiment --figure 7
    python -m repro experiment --table 4 --scale tiny

The CLI is a thin layer over the library: ``compile`` shows the minimal DFA
and the conflict-freedom analysis of a query, ``generate`` materializes one
of the synthetic workloads to CSV, ``run`` evaluates a persistent query
over a CSV stream and reports throughput/latency/result counts (optionally
through the sharded runtime with ``--shards N``), ``serve`` runs several
persistent queries as a :class:`~repro.runtime.StreamingQueryService`
across shard workers (optionally live-rebalancing hot shards with
``--rebalance load_aware``), ``migrate`` re-homes a query inside a service
checkpoint, ``split`` breaks a query inside a checkpoint into root
partitions (intra-query data parallelism — both ``run`` and ``serve``
also accept ``--partitions K`` to register queries pre-split),
``recover`` rebuilds a killed ``serve --wal`` run from its durability
directory (base checkpoint + incremental deltas + WAL replay — with
``--input`` it also re-ingests the stream tail the recovered state does
not cover, e.g. onto fresh ``--worker`` addresses after a lost host),
``worker`` runs a standalone TCP shard worker (``--listen HOST:PORT``,
port ``0`` binds an ephemeral port printed on stdout) for the ``tcp``
backend of ``run``/``serve``/``recover`` (repeatable ``--worker
HOST:PORT``, one per shard), and ``experiment`` regenerates one of the
paper's tables or figures.

``serve`` additionally installs SIGINT/SIGTERM handlers: a signal drains
the shards, takes the final checkpoint (into ``--wal`` when set) and
exits 0 instead of dying mid-batch; a second signal aborts immediately.

Observability: ``run``, ``serve`` and ``recover`` accept ``--log-level``
(default ``info``) and ``--log-format`` (``text`` or ``json``) — runtime
diagnostics go to stderr through the ``repro`` logger hierarchy while
results and summaries stay on stdout — and ``serve --metrics-port PORT``
exposes ``/metrics`` (Prometheus text), ``/healthz`` and
``/debug/traces`` while the service ingests (``0`` picks an ephemeral
port, logged at startup).  ``serve --trace-sample-rate P`` head-samples
distributed traces across the shard workers, and ``trace`` runs a
one-shot traced workload and writes Chrome trace-event JSON loadable in
Perfetto or ``chrome://tracing``.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .datasets import (
    GMarkGraphGenerator,
    LDBCLikeGenerator,
    StackOverflowGenerator,
    YagoLikeGenerator,
    default_social_schema,
)
from .experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    render_table1,
    render_table4,
    run_query,
    table1_complexity_check,
    table4_simple_path,
)
from .errors import ShardWorkerError
from .graph.stream import GeneratorStream, iter_csv, with_deletions, write_csv
from .graph.window import WindowSpec
from .regex.analysis import analyze
from .runtime import (
    BACKENDS,
    FSYNC_POLICIES,
    REBALANCE_POLICIES,
    SHARDING_POLICIES,
    RuntimeConfig,
    StreamingQueryService,
    configure_logging,
    get_logger,
)
from .runtime.config import LOG_FORMATS, LOG_LEVELS

__all__ = ["main", "build_parser"]

_LOG = get_logger("cli")

_GENERATORS = {
    "stackoverflow": lambda seed: StackOverflowGenerator(seed=seed),
    "ldbc": lambda seed: LDBCLikeGenerator(seed=seed),
    "yago": lambda seed: YagoLikeGenerator(seed=seed),
    "gmark": lambda seed: GMarkGraphGenerator(schema=default_social_schema(), seed=seed),
}


def _add_worker_addresses_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the repeatable ``--worker HOST:PORT`` flag (tcp backend)."""
    parser.add_argument(
        "--worker",
        action="append",
        dest="workers",
        metavar="HOST:PORT",
        default=None,
        help="address of a remote 'repro worker --listen' process (repeatable, one "
        "per shard in shard order; requires --backend tcp)",
    )


def _add_standby_addresses_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the repeatable ``--standby HOST:PORT`` flag (tcp backend)."""
    parser.add_argument(
        "--standby",
        action="append",
        dest="standbys",
        metavar="HOST:PORT",
        default=None,
        help="address of a spare 'repro worker --listen' process to keep as the "
        "shard's hot standby (repeatable, one per shard in shard order; 'none' "
        "or '-' leaves a shard unprotected; requires --backend tcp). On primary "
        "loss the standby is promoted instead of WAL-replayed",
    )


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--log-level`` / ``--log-format`` flags to a subcommand."""
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="runtime log verbosity on stderr (results stay on stdout)",
    )
    parser.add_argument(
        "--log-format",
        choices=LOG_FORMATS,
        default="text",
        help="log line format: human-oriented text or one JSON object per record",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persistent Regular Path Query evaluation on streaming graphs (SIGMOD 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser("compile", help="compile a query and show its automaton")
    compile_parser.add_argument("--query", required=True, help="RPQ expression, e.g. '(follows mentions)+'")
    compile_parser.add_argument(
        "--dot", action="store_true", help="also print the automaton in Graphviz dot format"
    )

    generate_parser = subparsers.add_parser("generate", help="generate a synthetic streaming graph as CSV")
    generate_parser.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate_parser.add_argument("--edges", type=int, default=10_000, help="number of tuples to generate")
    generate_parser.add_argument("--seed", type=int, default=7)
    generate_parser.add_argument("--output", required=True, help="CSV file to write")

    run_parser = subparsers.add_parser("run", help="evaluate a persistent query over a CSV stream")
    run_parser.add_argument("--query", required=True, help="RPQ expression")
    run_parser.add_argument("--input", required=True, help="CSV stream produced by 'generate' or write_csv")
    run_parser.add_argument("--window", type=int, required=True, help="window size |W| in time units")
    run_parser.add_argument("--slide", type=int, default=1, help="slide interval beta in time units")
    run_parser.add_argument("--semantics", choices=["arbitrary", "simple", "baseline"], default="arbitrary")
    run_parser.add_argument(
        "--deletions", type=float, default=0.0, help="inject this ratio of explicit deletions"
    )
    run_parser.add_argument("--limit", type=int, default=None, help="process only the first N tuples")
    run_parser.add_argument("--show-results", type=int, default=0, help="print up to N result pairs")
    run_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="evaluate through the sharded runtime; note run has a single query, which "
        "occupies one shard (query-level parallelism) — use 'serve' for real fan-out",
    )
    run_parser.add_argument(
        "--batch-size", type=int, default=64, help="tuples per worker batch (with --shards > 1)"
    )
    run_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="threading",
        help="worker concurrency backend (with --shards > 1); 'multiprocessing' uses real cores",
    )
    run_parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="split the query into this many root partitions, one per shard "
        "(intra-query data parallelism; requires --shards >= partitions and "
        "arbitrary semantics)",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run under cProfile and print the top 25 functions "
        "by cumulative time to stderr (stdout output is unchanged)",
    )
    _add_worker_addresses_argument(run_parser)
    _add_logging_arguments(run_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="run multiple persistent queries as a sharded service over a CSV stream"
    )
    serve_parser.add_argument(
        "--query",
        action="append",
        required=True,
        dest="queries",
        metavar="[NAME=]EXPR",
        help="persistent query to register (repeatable); unnamed queries become q0, q1, ...",
    )
    serve_parser.add_argument("--input", required=True, help="CSV stream produced by 'generate' or write_csv")
    serve_parser.add_argument("--window", type=int, required=True, help="window size |W| in time units")
    serve_parser.add_argument("--slide", type=int, default=1, help="slide interval beta in time units")
    serve_parser.add_argument("--semantics", choices=["arbitrary", "simple", "baseline"], default="arbitrary")
    serve_parser.add_argument("--shards", type=int, default=2, help="number of shard workers")
    serve_parser.add_argument("--batch-size", type=int, default=64, help="tuples per worker batch")
    serve_parser.add_argument(
        "--queue-depth", type=int, default=8, help="bounded queue depth per worker, in batches"
    )
    serve_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="threading",
        help="worker concurrency backend; 'multiprocessing' runs shards on real cores",
    )
    serve_parser.add_argument(
        "--policy", choices=sorted(SHARDING_POLICIES), default="hash", help="query-to-shard placement policy"
    )
    serve_parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="register every query split into this many root partitions across "
        "shards (intra-query data parallelism; requires arbitrary semantics)",
    )
    serve_parser.add_argument(
        "--rebalance",
        choices=sorted(REBALANCE_POLICIES),
        default="manual",
        help="rebalance policy; 'load_aware' live-migrates queries off hot shards",
    )
    serve_parser.add_argument(
        "--rebalance-interval",
        type=int,
        default=0,
        help="run the rebalance policy every N ingested tuples (0 = only when draining)",
    )
    serve_parser.add_argument(
        "--deletions", type=float, default=0.0, help="inject this ratio of explicit deletions"
    )
    serve_parser.add_argument("--limit", type=int, default=None, help="process only the first N tuples")
    serve_parser.add_argument(
        "--checkpoint", default=None, help="write a coordinated checkpoint JSON here after draining"
    )
    serve_parser.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="durability directory: write-ahead-log every routed tuple and "
        "checkpoint into DIR so a killed service can be rebuilt with 'repro recover'",
    )
    serve_parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=0,
        help="take an incremental durability checkpoint every N routed tuples "
        "(0 = only the final checkpoint on shutdown; requires --wal)",
    )
    serve_parser.add_argument(
        "--fsync",
        choices=sorted(FSYNC_POLICIES),
        default="batch",
        help="WAL fsync policy: 'always' syncs every record, 'batch' syncs at "
        "checkpoints (group commit), 'off' never syncs (with --wal)",
    )
    serve_parser.add_argument(
        "--show-results", type=int, default=0, help="print the first N events of the merged result stream"
    )
    serve_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics (Prometheus text), /healthz and /debug/traces on "
        "this port while ingesting (0 = pick an ephemeral port; the bound port "
        "is printed on stdout as 'metrics port N' at startup)",
    )
    serve_parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="head-sample this fraction of ingested work into distributed "
        "traces spanning coordinator and shard workers (0 disables tracing; "
        "sampled spans are served on /debug/traces with --metrics-port)",
    )
    _add_worker_addresses_argument(serve_parser)
    _add_standby_addresses_argument(serve_parser)
    _add_logging_arguments(serve_parser)

    migrate_parser = subparsers.add_parser(
        "migrate", help="move a query to another shard inside a service checkpoint"
    )
    migrate_parser.add_argument(
        "--checkpoint", required=True, help="service checkpoint JSON written by 'serve --checkpoint'"
    )
    migrate_parser.add_argument("--query", required=True, help="name of the query to move")
    migrate_parser.add_argument("--to-shard", type=int, required=True, help="shard the query should live on")
    migrate_parser.add_argument(
        "--partition",
        type=int,
        default=None,
        help="for a split query: which root partition to move (whole split queries cannot move as one)",
    )
    migrate_parser.add_argument(
        "--output", default=None, help="write the updated checkpoint here (default: in place)"
    )

    split_parser = subparsers.add_parser(
        "split", help="split a query into root partitions inside a service checkpoint"
    )
    split_parser.add_argument(
        "--checkpoint", required=True, help="service checkpoint JSON written by 'serve --checkpoint'"
    )
    split_parser.add_argument("--query", required=True, help="name of the query to split")
    split_parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="number of root partitions (default: one per shard of the checkpointed service)",
    )
    split_parser.add_argument(
        "--output", default=None, help="write the updated checkpoint here (default: in place)"
    )

    recover_parser = subparsers.add_parser(
        "recover", help="rebuild a crashed service from a durability directory"
    )
    recover_parser.add_argument(
        "--wal", required=True, metavar="DIR", help="durability directory written by 'serve --wal'"
    )
    recover_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="worker backend for the recovered service (default: the checkpointed one)",
    )
    recover_parser.add_argument(
        "--output",
        default=None,
        help="write the recovered state as a plain service checkpoint JSON here "
        "(loadable by 'repro migrate/split' or StreamingQueryService.load_checkpoint)",
    )
    recover_parser.add_argument(
        "--show-results", type=int, default=0, help="print the first N events of the merged result stream"
    )
    recover_parser.add_argument(
        "--input",
        default=None,
        help="resume ingestion after recovery: the crashed run's CSV stream; the "
        "tail the recovered state does not cover is re-ingested (with the same "
        "--deletions/--limit flags the crashed run used) before results print",
    )
    recover_parser.add_argument(
        "--deletions", type=float, default=0.0, help="deletion ratio the crashed run injected (with --input)"
    )
    recover_parser.add_argument(
        "--limit", type=int, default=None, help="tuple limit the crashed run used (with --input)"
    )
    _add_worker_addresses_argument(recover_parser)
    _add_logging_arguments(recover_parser)

    worker_parser = subparsers.add_parser(
        "worker", help="run a standalone TCP shard worker for a remote coordinator"
    )
    worker_parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="interface and port to accept the coordinator on (port 0 binds an "
        "ephemeral port; the bound address is printed on stdout)",
    )
    _add_logging_arguments(worker_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="run a traced workload and write Chrome trace-event JSON"
    )
    trace_parser.add_argument(
        "--query",
        action="append",
        required=True,
        dest="queries",
        metavar="[NAME=]EXPR",
        help="persistent query to register (repeatable); unnamed queries become q0, q1, ...",
    )
    trace_parser.add_argument("--input", required=True, help="CSV stream produced by 'generate' or write_csv")
    trace_parser.add_argument("--window", type=int, required=True, help="window size |W| in time units")
    trace_parser.add_argument("--slide", type=int, default=1, help="slide interval beta in time units")
    trace_parser.add_argument("--shards", type=int, default=2, help="number of shard workers")
    trace_parser.add_argument("--batch-size", type=int, default=64, help="tuples per worker batch")
    trace_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="threading",
        help="worker concurrency backend; 'multiprocessing' runs shards on real cores",
    )
    trace_parser.add_argument(
        "--deletions", type=float, default=0.0, help="inject this ratio of explicit deletions"
    )
    trace_parser.add_argument("--limit", type=int, default=None, help="process only the first N tuples")
    trace_parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        metavar="P",
        help="head-sampling probability for the traced run (default 1.0: trace everything)",
    )
    trace_parser.add_argument(
        "--out",
        default="trace.json",
        help="write the Chrome trace-event JSON here (open in Perfetto or chrome://tracing)",
    )
    _add_worker_addresses_argument(trace_parser)
    _add_logging_arguments(trace_parser)

    experiment_parser = subparsers.add_parser("experiment", help="regenerate a table or figure of the paper")
    target = experiment_parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--figure", type=int, choices=[4, 5, 6, 7, 8, 9, 10, 11])
    target.add_argument("--table", type=int, choices=[1, 4])
    experiment_parser.add_argument("--scale", choices=["tiny", "small", "medium"], default="small")

    return parser


def _command_compile(args: argparse.Namespace) -> int:
    analysis = analyze(args.query)
    print(f"query                 : {analysis.expression}")
    print(f"query size |Q_R|      : {analysis.expression.size()}")
    print(f"alphabet              : {sorted(analysis.alphabet)}")
    print(f"minimal DFA           : {analysis.dfa}")
    print(f"containment property  : {analysis.containment_property}")
    print(f"restricted expression : {analysis.restricted}")
    print(f"conflict-free (query) : {analysis.conflict_free_by_query()}")
    if args.dot:
        print()
        print(analysis.dfa.to_dot())
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.dataset](args.seed)
    stream = generator.generate(args.edges)
    written = write_csv(args.output, stream)
    print(f"wrote {written} tuples of the {args.dataset} workload to {args.output}")
    return 0


def _load_stream(args: argparse.Namespace):
    """Build the input stream for run/serve: lazy unless deletions are injected."""
    stream = iter_csv(args.input)
    if args.limit is not None:
        import itertools

        limit = args.limit
        source = stream
        stream = GeneratorStream(lambda: itertools.islice(iter(source), limit))
    if args.deletions > 0:
        # Deletion injection needs the whole stream to pick edges to negate.
        stream = with_deletions(list(stream), args.deletions)
    return stream


def _command_run(args: argparse.Namespace) -> int:
    if not getattr(args, "profile", False):
        return _command_run_inner(args)
    # Profile the whole command (stream loading, evaluation, reporting) so
    # hot spots in any layer show up; the report goes to stderr so stdout
    # stays parseable.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return _command_run_inner(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)


def _command_run_inner(args: argparse.Namespace) -> int:
    configure_logging(args.log_level, args.log_format)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    stream = _load_stream(args)
    window = WindowSpec(size=args.window, slide=args.slide)
    if args.shards > 1:
        return _run_sharded(args, stream, window)
    result = run_query(
        args.query,
        stream,
        window,
        semantics=args.semantics,
        query_name=args.query,
        dataset=args.input,
    )
    print(f"query            : {args.query}")
    print(f"semantics        : {args.semantics}")
    print(f"window           : |W|={args.window}, beta={args.slide}")
    print(f"tuples processed : {result.num_tuples} ({result.relevant_tuples} relevant)")
    print(f"status           : {'ok' if result.completed else 'failed: ' + str(result.error)}")
    print(f"distinct results : {result.distinct_results}")
    print(f"throughput       : {result.throughput_eps:,.0f} edges/s")
    print(f"mean latency     : {result.mean_latency_us:,.1f} us")
    print(f"p99 latency      : {result.tail_latency_us:,.1f} us")
    print(f"index size       : {result.index_nodes} nodes in {result.index_trees} trees")
    if args.show_results > 0:
        from .core.engine import make_evaluator

        evaluator = make_evaluator(args.query, window, args.semantics)
        evaluator.process_stream(stream)
        for pair in sorted(evaluator.answer_pairs())[: args.show_results]:
            print(f"  {pair[0]} -> {pair[1]}")
    return 0 if result.completed else 1


def _make_runtime_config(args: argparse.Namespace) -> RuntimeConfig:
    workers = getattr(args, "workers", None)
    standbys = getattr(args, "standbys", None)
    try:
        return RuntimeConfig(
            shards=args.shards,
            batch_size=args.batch_size,
            queue_depth=getattr(args, "queue_depth", 8),
            backend=getattr(args, "backend", "threading"),
            worker_addresses=tuple(workers) if workers else None,
            standby_addresses=tuple(standbys) if standbys else None,
            sharding=getattr(args, "policy", "hash"),
            partitions=getattr(args, "partitions", 1),
            rebalance_policy=getattr(args, "rebalance", "manual"),
            rebalance_interval=getattr(args, "rebalance_interval", 0),
            wal_dir=getattr(args, "wal", None),
            wal_fsync=getattr(args, "fsync", "batch"),
            checkpoint_interval=getattr(args, "checkpoint_interval", 0),
            metrics_port=getattr(args, "metrics_port", None),
            trace_sample_rate=getattr(args, "trace_sample_rate", 0.0),
            log_level=getattr(args, "log_level", "warning"),
            log_format=getattr(args, "log_format", "text"),
        )
    except ValueError as exc:  # ConfigError subclasses ValueError
        raise SystemExit(f"invalid runtime configuration: {exc}") from None


def _run_sharded(args: argparse.Namespace, stream, window: WindowSpec) -> int:
    import time

    service = StreamingQueryService(window, _make_runtime_config(args))
    try:
        service.register(args.query, args.query, semantics=args.semantics)
    except ValueError as exc:
        raise SystemExit(f"cannot register {args.query!r}: {exc}") from None
    started = time.perf_counter()
    try:
        with service:
            service.ingest(stream)
            service.drain()
            elapsed = time.perf_counter() - started
            summary = service.summary()
            triples = service.result_triples(args.query)
            pairs = service.answer_pairs(args.query)
    except ShardWorkerError as exc:
        # Mirror the single-threaded path: report the failure and exit 1
        # (e.g. an RSPQ conflict budget exceeded inside a shard worker).
        print(f"query            : {args.query}")
        print(f"semantics        : {args.semantics}")
        print(f"status           : failed: {exc.__cause__ or exc}")
        return 1
    totals = summary["totals"]
    print(f"query            : {args.query}")
    print(f"semantics        : {args.semantics}")
    print(f"window           : |W|={args.window}, beta={args.slide}")
    print(f"runtime          : {args.shards} shard(s), backend={args.backend}, "
          f"batch={args.batch_size}, partitions={args.partitions}")
    print(f"tuples processed : {totals['tuples_ingested']} "
          f"({totals['tuples_dropped_unroutable']} dropped as irrelevant)")
    print(f"distinct results : {len(pairs)} ({len(triples)} result events)")
    if elapsed > 0:
        print(f"throughput       : {totals['tuples_ingested'] / elapsed:,.0f} edges/s")
    if args.show_results > 0:
        for source, target in sorted(pairs)[: args.show_results]:
            print(f"  {source} -> {target}")
    return 0


def _parse_named_queries(specs) -> "dict":
    queries = {}
    for position, spec in enumerate(specs):
        name, eq, expression = spec.partition("=")
        if not eq:
            name, expression = f"q{position}", spec
        name, expression = name.strip(), expression.strip()
        if not name or not expression:
            raise SystemExit(f"invalid --query {spec!r}; expected [NAME=]EXPR")
        if name in queries:
            raise SystemExit(f"duplicate query name {name!r}")
        queries[name] = expression
    return queries


class _GracefulShutdown:
    """SIGINT/SIGTERM handler for ``repro serve``: drain, checkpoint, exit 0.

    Instead of dying mid-batch (losing the window since the last
    checkpoint on a non-durable run, or forcing a WAL replay on a durable
    one), the serve loop polls :attr:`requested` between tuples: on the
    first signal it stops ingesting, drains every shard and takes the
    final coordinated checkpoint — ``service.stop()`` writes it to the
    ``--wal`` directory when one is set.  A second signal falls back to
    the previous handler (typically: die).
    """

    def __init__(self) -> None:
        self.requested = False
        self.signal_name = ""
        self._previous = {}

    def install(self) -> "_GracefulShutdown":
        """Install the handlers; returns self for chaining."""
        import signal as signal_mod

        for signum in (signal_mod.SIGINT, signal_mod.SIGTERM):
            self._previous[signum] = signal_mod.signal(signum, self._handle)
        return self

    def restore(self) -> None:
        """Put the previous handlers back."""
        import signal as signal_mod

        for signum, handler in self._previous.items():
            signal_mod.signal(signum, handler)
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        import signal as signal_mod

        if self.requested:  # second signal: give up gracefully being graceful
            self.restore()
            raise KeyboardInterrupt
        self.requested = True
        self.signal_name = signal_mod.Signals(signum).name


def _command_serve(args: argparse.Namespace) -> int:
    import time

    configure_logging(args.log_level, args.log_format)
    queries = _parse_named_queries(args.queries)
    config = _make_runtime_config(args)
    if args.checkpoint and args.semantics != "arbitrary":
        raise SystemExit(
            "--checkpoint requires --semantics arbitrary (only arbitrary-path "
            "queries are checkpointable)"
        )
    if args.wal and args.semantics != "arbitrary":
        raise SystemExit(
            "--wal requires --semantics arbitrary (only arbitrary-path queries "
            "can be checkpointed for recovery)"
        )
    stream = _load_stream(args)
    window = WindowSpec(size=args.window, slide=args.slide)
    service = StreamingQueryService(window, config)
    for name, expression in queries.items():
        try:
            shard = service.register(name, expression, semantics=args.semantics)
        except ValueError as exc:
            raise SystemExit(f"cannot register {name!r}: {exc}") from None
        if config.partitions > 1:
            _LOG.info(
                "registered %r (%s) as %d root partitions, partition 0 on shard %d",
                name,
                expression,
                config.partitions,
                shard,
            )
        else:
            _LOG.info("registered %r (%s) on shard %d", name, expression, shard)
    started = time.perf_counter()
    shutdown = _GracefulShutdown().install()

    def until_shutdown(tuples):
        """Pass the stream through, ending it at the first shutdown signal."""
        for tup in tuples:
            if shutdown.requested:
                return
            yield tup

    try:
        with service:
            if config.metrics_port is not None and service.observability_port is not None:
                # On stdout (not the log) so scripts can parse the bound
                # port of a `--metrics-port 0` ephemeral bind race-free.
                print(f"metrics port {service.observability_port}", flush=True)
            service.ingest(until_shutdown(stream))
            service.drain()
            elapsed = time.perf_counter() - started
            summary = service.summary()
            if args.checkpoint:
                path = service.save_checkpoint(args.checkpoint)
                _LOG.info("checkpoint written to %s", path)
            merged_head = []
            if args.show_results > 0:
                import itertools

                merged_head = list(itertools.islice(service.global_events(), args.show_results))
        # service.stop() (the context exit) has drained and — with --wal —
        # taken the final durability checkpoint by the time we get here.
        if shutdown.requested:
            _LOG.info(
                "received %s: drained, %sstopping cleanly",
                shutdown.signal_name,
                f"checkpointed to {args.wal}, " if args.wal else "",
            )
    except ShardWorkerError as exc:
        print(f"status           : failed: {exc.__cause__ or exc}")
        return 1
    finally:
        shutdown.restore()
    totals = summary["totals"]
    print(f"window           : |W|={args.window}, beta={args.slide}")
    print(f"runtime          : {args.shards} shard(s), backend={args.backend}, "
          f"policy={args.policy}, batch={args.batch_size}")
    print(f"tuples ingested  : {totals['tuples_ingested']} "
          f"({totals['tuples_dropped_unroutable']} dropped as irrelevant)")
    if elapsed > 0:
        print(f"throughput       : {totals['tuples_ingested'] / elapsed:,.0f} edges/s")
    for stats in summary["shards"]:
        print(f"  shard {int(stats['shard'])}: queries={int(stats['queries'])} "
              f"tuples={int(stats['tuples'])} batches={int(stats['batches'])} "
              f"busy={stats['busy_seconds']:.3f}s")
    for promo in service.promotions:
        print(f"  promotion shard {promo['shard']}: {promo['previous_address']} -> "
              f"{promo['address']} at LSN {promo['lsn']} in {promo['seconds'] * 1000:.1f}ms "
              f"(replayed {promo['replayed_records']} WAL records)")
    for move in summary["migrations"]:
        print(f"  migrated {move['query']!r}: shard {move['source']} -> {move['target']} "
              f"after {move['at_tuples']} tuples ({move['reason']})")
    for move in summary["splits"]:
        print(f"  split {move['query']!r}: shard {move['source']} -> {move['partitions']} partitions "
              f"on shards {move['targets']} after {move['at_tuples']} tuples ({move['reason']})")
    for name, stats in sorted(summary["queries"].items()):
        print(f"  query {name!r}: shard={stats['shard']} results={stats['distinct_results']} "
              f"events={stats['events']} index={stats['index']}")
    for tagged in merged_head:
        print(f"  {tagged}")
    return 0


def _command_migrate(args: argparse.Namespace) -> int:
    """Offline migration: re-home a query inside a service checkpoint.

    The service is assembled from the checkpoint without starting any
    workers (control frames execute inline), the query's evaluator blob is
    moved between shard engines exactly as a live migration would, and the
    updated checkpoint is written back.  Restoring it later places the
    query on its new shard.
    """
    from .errors import RuntimeStateError

    try:
        service = StreamingQueryService.load_checkpoint(args.checkpoint)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load checkpoint {args.checkpoint!r}: {exc}") from None
    if args.query not in service:
        raise SystemExit(f"no query named {args.query!r} in the checkpoint; it holds {service.queries()}")
    label = args.query if args.partition is None else f"{args.query} (partition {args.partition})"
    try:
        source = service.shard_of(args.query, partition=args.partition)
        target = service.migrate(args.query, args.to_shard, partition=args.partition)
    except (KeyError, ValueError, RuntimeStateError) as exc:
        raise SystemExit(f"cannot migrate {args.query!r}: {exc}") from None
    path = service.save_checkpoint(args.output or args.checkpoint)
    if target == source:
        print(f"query {label!r} already lives on shard {source}; checkpoint unchanged")
    else:
        print(f"migrated {label!r}: shard {source} -> {target}")
    print(f"checkpoint written to {path}")
    return 0


def _command_split(args: argparse.Namespace) -> int:
    """Offline whale splitting: partition a query inside a service checkpoint.

    The service is assembled from the checkpoint without starting any
    workers (control frames execute inline), the query's evaluator blob is
    split by tree root exactly as a live split would, and the updated
    checkpoint is written back.  Restoring it later runs the query as
    root-partition evaluators spread over the shards.
    """
    from .errors import RuntimeStateError

    try:
        service = StreamingQueryService.load_checkpoint(args.checkpoint)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load checkpoint {args.checkpoint!r}: {exc}") from None
    if args.query not in service:
        raise SystemExit(f"no query named {args.query!r} in the checkpoint; it holds {service.queries()}")
    try:
        targets = service.split(args.query, args.partitions)
    except (KeyError, ValueError, RuntimeStateError) as exc:
        raise SystemExit(f"cannot split {args.query!r}: {exc}") from None
    path = service.save_checkpoint(args.output or args.checkpoint)
    print(f"split {args.query!r} into {len(targets)} root partitions on shards {targets}")
    print(f"checkpoint written to {path}")
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    """Rebuild a crashed service from a durability directory.

    Folds the checkpoint chain (base + deltas), replays each shard's WAL
    tail and prints what was recovered; ``--output`` additionally writes
    the recovered state as a plain service checkpoint JSON so the other
    offline commands (``migrate``, ``split``) and
    ``StreamingQueryService.load_checkpoint`` can pick it up.

    With ``--input`` the recovery is completed end to end: the recovered
    service is started (for ``--backend tcp``, against the fresh
    ``--worker`` addresses — warm-standby failover after a lost host),
    the stream tail from ``RecoveryResult.next_index`` on is re-ingested,
    and the service drains before results print — bit-identical to a run
    that never crashed.
    """
    from .errors import CheckpointError
    from .runtime.durability import RecoveryManager

    configure_logging(args.log_level, args.log_format)
    workers = getattr(args, "workers", None)
    try:
        result = RecoveryManager(args.wal).recover(
            backend=args.backend,
            worker_addresses=tuple(workers) if workers else None,
        )
    except (OSError, ValueError, CheckpointError) as exc:
        raise SystemExit(f"cannot recover from {args.wal!r}: {exc}") from None
    service = result.service
    print(f"recovered from checkpoint {result.checkpoint_id} + WAL replay")
    if result.phase_seconds:
        timings = ", ".join(f"{phase}={seconds:.3f}s" for phase, seconds in result.phase_seconds.items())
        print(f"phases           : {timings} (operation {result.operation_id})")
    print(f"queries          : {service.queries()}")
    print(f"tuples covered   : {result.next_index - 1} (resume the stream at index {result.next_index})")
    for shard in sorted(result.replayed_tuples):
        print(
            f"  shard {shard}: replayed {result.replayed_tuples[shard]} tuples, "
            f"{result.replayed_ops[shard]} topology ops"
        )
    if result.healed_tuples:
        print(f"healed           : {result.healed_tuples} tuples re-delivered to torn shards")
    for name in result.dropped_queries:
        print(f"  dropped {name} (crashed mid-move; reconciled)")
    for checkpoint_id, problem in result.skipped_checkpoints:
        print(f"  skipped checkpoint {checkpoint_id}: {problem}")
    if args.input:
        tail = list(_load_stream(args))[result.next_index - 1 :]
        if tail:
            try:
                with service:
                    service.ingest(tail)
                    service.drain()
            except ShardWorkerError as exc:
                print(f"status           : failed while resuming: {exc.__cause__ or exc}")
                return 1
        print(f"resumed          : re-ingested {len(tail)} tuples from index {result.next_index}")
    if args.output:
        path = service.save_checkpoint(args.output)
        print(f"recovered state written to {path}")
    if args.show_results > 0:
        import itertools

        for tagged in itertools.islice(service.global_events(), args.show_results):
            print(f"  {tagged}")
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """Run a standalone TCP shard worker until SIGINT/SIGTERM.

    Prints ``worker listening on HOST:PORT`` on stdout once the listener
    is bound — with ``--listen host:0`` that is the only race-free way a
    launching script learns the ephemeral port.  The worker is
    session-oriented: each connecting coordinator ships the shard id,
    config and bootstrap in its handshake, so one worker process can
    serve successive coordinators (e.g. a recovery run) without
    restarting.
    """
    import signal as signal_mod

    from .runtime import TcpWorkerServer
    from .runtime.config import parse_worker_address

    configure_logging(args.log_level, args.log_format)
    try:
        host, port = parse_worker_address(args.listen, allow_ephemeral=True)
    except ValueError as exc:  # ConfigError subclasses ValueError
        raise SystemExit(str(exc)) from None
    server = TcpWorkerServer(host, port)
    bound = server.start()
    print(f"worker listening on {host}:{bound}", flush=True)

    def _stop(signum, frame):
        server.stop()

    for signum in (signal_mod.SIGINT, signal_mod.SIGTERM):
        signal_mod.signal(signum, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print(f"worker stopped after {server.sessions_served} session(s)")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    """Run a traced workload and write Chrome trace-event JSON.

    A one-shot ``serve``-like run with head sampling on (default 100%):
    the stream is ingested and drained, the workers' buffered spans are
    harvested through the ``METRICS`` frames, and the merged span set is
    rendered with
    :func:`~repro.runtime.observability.chrome_trace_events` to ``--out``
    — loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``, one lane per process, one row per shard.
    """
    import json

    from .runtime.observability import chrome_trace_events, connected_traces

    configure_logging(args.log_level, args.log_format)
    queries = _parse_named_queries(args.queries)
    config = _make_runtime_config(args)
    if config.trace_sample_rate <= 0.0:
        raise SystemExit("--trace-sample-rate must be > 0 for 'repro trace' to record anything")
    stream = _load_stream(args)
    window = WindowSpec(size=args.window, slide=args.slide)
    service = StreamingQueryService(window, config)
    for name, expression in queries.items():
        try:
            service.register(name, expression)
        except ValueError as exc:
            raise SystemExit(f"cannot register {name!r}: {exc}") from None
    try:
        with service:
            service.ingest(stream)
            service.drain()
            summary = service.summary()  # harvests the workers' buffered spans
    except ShardWorkerError as exc:
        print(f"status           : failed: {exc.__cause__ or exc}")
        return 1
    spans = service.traces_snapshot()
    events = chrome_trace_events(spans)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(events, handle)
        handle.write("\n")
    totals = summary["totals"]
    trace_ids = {span["trace_id"] for span in spans}
    processes = sorted({span.get("process", "unknown") for span in spans})
    print(f"tuples ingested  : {totals['tuples_ingested']}")
    print(f"spans recorded   : {len(spans)} in {len(trace_ids)} traces "
          f"({len(connected_traces(spans))} connected)")
    print(f"processes        : {', '.join(processes)}")
    latency = totals.get("event_latency")
    if latency and latency.get("p50_seconds") is not None:
        print(f"event latency    : p50={latency['p50_seconds'] * 1e3:.2f}ms "
              f"p95={latency['p95_seconds'] * 1e3:.2f}ms "
              f"p99={latency['p99_seconds'] * 1e3:.2f}ms over {latency['count']} sampled tuples")
    print(f"trace written to {args.out}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.table == 1:
        print(render_table1(table1_complexity_check(scale=args.scale)))
        return 0
    if args.table == 4:
        print(render_table4(table4_simple_path(scale=args.scale)))
        return 0
    if args.figure == 4:
        for figure in figure4(scale=args.scale).values():
            print(figure.render())
            print()
        return 0
    if args.figure == 6:
        for figure in figure6(scale=args.scale).values():
            print(figure.render())
            print()
        return 0
    single_figure = {
        5: lambda: figure5(scale=args.scale),
        7: lambda: figure7(),
        8: lambda: figure8(scale=args.scale),
        9: lambda: figure9(scale=args.scale),
        10: lambda: figure10(scale=args.scale),
        11: lambda: figure11(scale="tiny" if args.scale == "small" else args.scale),
    }
    print(single_figure[args.figure]().render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compile": _command_compile,
        "generate": _command_generate,
        "run": _command_run,
        "serve": _command_serve,
        "migrate": _command_migrate,
        "split": _command_split,
        "recover": _command_recover,
        "worker": _command_worker,
        "trace": _command_trace,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
