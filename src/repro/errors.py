"""Exception types shared across the streaming RPQ library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StreamOrderError",
    "ConflictBudgetExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class StreamOrderError(ReproError, ValueError):
    """Raised when stream tuples violate the non-decreasing timestamp order."""


class ConflictBudgetExceeded(ReproError, RuntimeError):
    """Raised when RSPQ evaluation exceeds its node/work budget.

    RPQ evaluation under simple path semantics is NP-hard in general; on
    conflict-heavy inputs the spanning trees can grow exponentially.  The
    evaluator accepts a budget so that experiments (Table 4) can classify a
    query as "not successfully evaluated" instead of running forever.
    """

    def __init__(self, message: str, tree_root=None, nodes: int = 0) -> None:
        super().__init__(message)
        self.tree_root = tree_root
        self.nodes = nodes
