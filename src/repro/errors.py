"""Exception types shared across the streaming RPQ library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StreamOrderError",
    "ConfigError",
    "CheckpointError",
    "ConflictBudgetExceeded",
    "ReplicationError",
    "RuntimeStateError",
    "ShardWorkerError",
    "WALCorruptionError",
    "WorkerUnavailableError",
    "WireProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class StreamOrderError(ReproError, ValueError):
    """Raised when stream tuples violate the non-decreasing timestamp order."""


class ConfigError(ReproError, ValueError):
    """Raised when a configuration value is invalid.

    Raised at construction time (e.g. by
    :class:`~repro.runtime.RuntimeConfig`) so misconfigurations fail fast
    with a message listing the valid choices, instead of surfacing as a
    late ``KeyError`` deep inside the runtime.
    """


class CheckpointError(ReproError, ValueError):
    """Raised when a checkpoint blob cannot be decoded or restored.

    Loading a checkpoint crosses a trust boundary: the bytes may be
    truncated (a crash mid-write), corrupted, or produced by a different
    format version.  Every loader in :mod:`repro.core.checkpoint` and the
    durability subsystem reports such problems with this exception —
    carrying what was being decoded and where it went wrong — instead of
    leaking a raw ``KeyError`` / ``json.JSONDecodeError`` / ``struct.error``
    from deep inside the decoder.

    Subclasses :class:`ValueError` so callers that predate it keep working.
    """


class WALCorruptionError(CheckpointError):
    """Raised when a write-ahead-log segment holds an undecodable record.

    A truncated record at the *tail* of the last segment is the expected
    signature of a crash and is tolerated (replay simply stops there); a
    bad length prefix or CRC mismatch anywhere records should still be
    intact is real corruption and raised as this error, naming the segment
    file and byte offset.
    """


class WireProtocolError(ReproError, RuntimeError):
    """Raised when a runtime wire-protocol frame is malformed or unknown.

    The coordinator and its shard workers exchange only the typed frames
    defined in :mod:`repro.runtime.protocol`; anything else on the wire is
    a programming error and is reported with this exception.
    """


class RuntimeStateError(ReproError, RuntimeError):
    """Raised when a runtime-service operation is invalid in its lifecycle state.

    Examples: ingesting into a :class:`~repro.runtime.StreamingQueryService`
    that has not been started, or starting a service twice.
    """


class ShardWorkerError(ReproError, RuntimeError):
    """Raised when a shard worker failed while processing its queue.

    The original exception raised on the worker thread is attached as
    ``__cause__`` and surfaced to the caller on the next interaction with
    the worker (submit, drain, stop or a control call).  The failure is
    sticky: the shard's engine may have missed tuples, so the worker stays
    poisoned and every later interaction re-raises.
    """

    def __init__(self, message: str, shard_id: int = -1) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class WorkerUnavailableError(ShardWorkerError):
    """Raised when a remote shard worker cannot be reached over its transport.

    The ``tcp`` backend raises it when dialing a worker address fails after
    the configured connect retries, when a connection drops mid-stream
    (torn frame, CRC mismatch, peer reset), or when a read stalls past the
    read timeout.  It subclasses :class:`ShardWorkerError`, so existing
    failure handling — the sticky-poisoning of the shard, re-raising on
    every later interaction, ``service.health()`` reporting — applies
    unchanged; the distinct type lets operators tell "the worker's engine
    raised" from "the worker's host went away" (the latter is recoverable
    by replaying the shard's WAL onto a fresh worker).
    """


class ReplicationError(ReproError, RuntimeError):
    """Raised when hot-standby replication cannot keep or use a standby.

    Covers both sides of the replication channel: the coordinator's
    :class:`~repro.runtime.replication.ReplicationManager` raises it when
    a standby cannot be armed, stops acknowledging shipped records, or a
    promotion cannot complete (the standby is dead, lags the promotion
    LSN, or rejects the unmute); the standby apply loop raises it when the
    replicated record stream arrives out of order (an LSN gap means
    records were lost or reordered, and applying past a gap would desync
    the replica — the session aborts instead).  A failed promotion never
    masks the original transport failure: the service re-raises the
    triggering :class:`WorkerUnavailableError` with this error attached as
    context, and cold WAL-replay recovery remains available.
    """


class ConflictBudgetExceeded(ReproError, RuntimeError):
    """Raised when RSPQ evaluation exceeds its node/work budget.

    RPQ evaluation under simple path semantics is NP-hard in general; on
    conflict-heavy inputs the spanning trees can grow exponentially.  The
    evaluator accepts a budget so that experiments (Table 4) can classify a
    query as "not successfully evaluated" instead of running forever.
    """

    def __init__(self, message: str, tree_root=None, nodes: int = 0) -> None:
        super().__init__(message)
        self.tree_root = tree_root
        self.nodes = nodes
