"""repro — Streaming RPQ: persistent Regular Path Query evaluation on streaming graphs.

A from-scratch Python reproduction of "Regular Path Query Evaluation on
Streaming Graphs" (Pacaci, Bonifati, Özsu — SIGMOD 2020).

Quickstart::

    from repro import StreamingRPQEngine, WindowSpec, sgt

    engine = StreamingRPQEngine(WindowSpec(size=15, slide=1))
    engine.register("notify", "(follows mentions)+")
    engine.process(sgt(4, "y", "u", "mentions"))
    engine.process(sgt(13, "x", "y", "follows"))
    print(engine.query("notify").answer_pairs())

The public API is re-exported here; see the subpackages for the full
surface:

* :mod:`repro.regex` — RPQ expressions and automata;
* :mod:`repro.graph` — streaming graph tuples, streams, windows, snapshots;
* :mod:`repro.core` — the streaming algorithms (RAPQ, RSPQ), baseline and engine;
* :mod:`repro.datasets` — query workloads and synthetic streaming graphs;
* :mod:`repro.metrics` — latency/throughput collectors and reporting;
* :mod:`repro.experiments` — harness regenerating the paper's tables and figures;
* :mod:`repro.runtime` — sharded parallel runtime (multi-worker service,
  stream router, result merger, coordinated checkpointing).
"""

from .core import (
    RAPQEvaluator,
    RSPQEvaluator,
    ResultEvent,
    ResultStream,
    SnapshotRecomputeBaseline,
    StreamingRPQEngine,
    batch_rapq,
    batch_rspq,
    load_checkpoint,
    make_evaluator,
    restore_rapq,
    save_checkpoint,
)
from .errors import (
    ConfigError,
    ConflictBudgetExceeded,
    ReproError,
    RuntimeStateError,
    ShardWorkerError,
    StreamOrderError,
    WireProtocolError,
    WorkerUnavailableError,
)
from .extensions import (
    EdgePredicate,
    PropertyEdge,
    PropertyGraphEngine,
    PropertyPathQuery,
    SharedSnapshotEngine,
)
from .graph import (
    EdgeOp,
    GraphStream,
    ListStream,
    ReorderingBuffer,
    SlidingWindow,
    SnapshotGraph,
    StreamingGraphTuple,
    WindowSpec,
    reorder_stream,
    sgt,
    with_deletions,
)
from .regex import QueryAnalysis, analyze, compile_query, parse
from .runtime import RuntimeConfig, StreamingQueryService

__version__ = "1.2.0"

__all__ = [
    "ConfigError",
    "ConflictBudgetExceeded",
    "EdgeOp",
    "EdgePredicate",
    "GraphStream",
    "ListStream",
    "PropertyEdge",
    "PropertyGraphEngine",
    "PropertyPathQuery",
    "QueryAnalysis",
    "RAPQEvaluator",
    "RSPQEvaluator",
    "ReorderingBuffer",
    "ReproError",
    "ResultEvent",
    "ResultStream",
    "RuntimeConfig",
    "RuntimeStateError",
    "ShardWorkerError",
    "SharedSnapshotEngine",
    "SlidingWindow",
    "SnapshotGraph",
    "SnapshotRecomputeBaseline",
    "StreamOrderError",
    "StreamingGraphTuple",
    "StreamingQueryService",
    "StreamingRPQEngine",
    "WindowSpec",
    "WireProtocolError",
    "WorkerUnavailableError",
    "analyze",
    "batch_rapq",
    "batch_rspq",
    "compile_query",
    "load_checkpoint",
    "make_evaluator",
    "parse",
    "reorder_stream",
    "restore_rapq",
    "save_checkpoint",
    "sgt",
    "with_deletions",
    "__version__",
]
