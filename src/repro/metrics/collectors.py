"""Performance metric collectors used by the experiment harness.

The paper's evaluation (§5) reports, per query and dataset:

* **throughput** in edges per second;
* **tail latency**: the 99th percentile of per-tuple processing latency;
* **window-management time**: time spent in the expiry procedures;
* **index size**: number of trees and nodes in the Delta index.

These collectors are deliberately free of external dependencies and work
on plain Python floats so they can be used inside tight processing loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["percentile", "LatencyCollector", "ThroughputMeter", "CounterSeries"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Return the ``fraction`` percentile of ``samples`` (linear interpolation).

    Args:
        samples: the observations; must be non-empty.
        fraction: requested percentile in ``[0, 1]`` (0.99 = tail latency).

    Raises:
        ValueError: for an empty sample set or a fraction outside ``[0, 1]``.
    """
    if not samples:
        raise ValueError("cannot compute a percentile of zero samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class LatencyCollector:
    """Collects per-tuple latency samples and summarizes them.

    Latencies are recorded in seconds and reported in microseconds, the unit
    the paper's figures use.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        if seconds < 0:
            raise ValueError(f"latency cannot be negative, got {seconds}")
        self._samples.append(seconds)

    def extend(self, seconds: Iterable[float]) -> None:
        """Record many latency observations at once."""
        for value in seconds:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """The raw samples, in seconds, in recording order."""
        return list(self._samples)

    def mean(self) -> float:
        """Mean latency in seconds."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return sum(self._samples) / len(self._samples)

    def tail(self, fraction: float = 0.99) -> float:
        """Tail latency (``fraction`` percentile) in seconds."""
        return percentile(self._samples, fraction)

    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return self.mean() * 1e6

    def tail_us(self, fraction: float = 0.99) -> float:
        """Tail latency in microseconds (the unit of the paper's plots)."""
        return self.tail(fraction) * 1e6

    def total(self) -> float:
        """Total recorded time in seconds."""
        return sum(self._samples)

    def throughput(self) -> float:
        """Processed tuples per second implied by the recorded latencies.

        The prototype of the paper is a closed system where each tuple is
        processed sequentially, so throughput is the inverse of the mean
        latency.
        """
        total = self.total()
        if total <= 0:
            raise ValueError("cannot compute throughput without elapsed time")
        return len(self._samples) / total

    def summary(self, tail_fraction: float = 0.99) -> Dict[str, float]:
        """Return mean/tail latency (microseconds), throughput and count.

        An empty collector summarizes to all zeroes (rather than raising
        like :meth:`mean` / :meth:`throughput` do) so an idle shard can be
        scraped by the metrics exporter without crashing it.
        """
        if not self._samples:
            return {
                "count": 0.0,
                "mean_us": 0.0,
                "p50_us": 0.0,
                "p95_us": 0.0,
                "tail_us": 0.0,
                "throughput_eps": 0.0,
            }
        return {
            "count": float(len(self._samples)),
            "mean_us": self.mean_us(),
            "p50_us": percentile(self._samples, 0.50) * 1e6,
            "p95_us": percentile(self._samples, 0.95) * 1e6,
            "tail_us": self.tail_us(tail_fraction),
            "throughput_eps": self.throughput(),
        }


@dataclass
class ThroughputMeter:
    """Tracks tuples processed against wall-clock time."""

    tuples: int = 0
    elapsed_seconds: float = 0.0

    def record_batch(self, tuples: int, elapsed_seconds: float) -> None:
        """Add a processed batch of ``tuples`` that took ``elapsed_seconds``."""
        if tuples < 0 or elapsed_seconds < 0:
            raise ValueError("tuples and elapsed_seconds must be non-negative")
        self.tuples += tuples
        self.elapsed_seconds += elapsed_seconds

    def edges_per_second(self) -> float:
        """Overall throughput in edges (tuples) per second.

        An idle meter (no elapsed time recorded yet) reports ``0.0`` so
        the metrics exporter can scrape a shard before its first batch.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tuples / self.elapsed_seconds


class CounterSeries:
    """A labelled series of numeric observations (e.g. index size over time)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        """Append one observation."""
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """All observations in recording order."""
        return list(self._values)

    def last(self) -> Optional[float]:
        """Most recent observation, or ``None`` when empty."""
        return self._values[-1] if self._values else None

    def max(self) -> float:
        """Largest observation."""
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self._values)

    def mean(self) -> float:
        """Mean of the observations."""
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self._values) / len(self._values)
