"""Plain-text reporting helpers for experiment results.

The benchmark harness regenerates the paper's tables and figures as text:
each figure becomes a table of series (one row per x-value, one column per
series).  These helpers format such tables consistently so the benchmark
output files are easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_series", "format_mapping", "Figure"]

Number = Union[int, float]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` as an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Mapping[object, Number]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render several named series sharing an x-axis as one table.

    Args:
        x_label: header of the x-axis column.
        series: mapping ``series name -> {x value -> y value}``.
    """
    x_values: List[object] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label] + list(series.keys())
    rows = []
    for x in x_values:
        row: List[object] = [x]
        for name in series:
            row.append(series[name].get(x, ""))
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


def format_mapping(mapping: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render a flat key/value mapping, one ``key: value`` pair per line."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    width = max((len(str(key)) for key in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {_format_cell(value, 3)}")
    return "\n".join(lines)


class Figure:
    """A named collection of series reproducing one figure of the paper.

    The experiment functions in :mod:`repro.experiments.figures` return
    instances of this class; benchmarks print them, and EXPERIMENTS.md
    records the printed output.
    """

    def __init__(self, name: str, x_label: str, description: str = "") -> None:
        self.name = name
        self.x_label = x_label
        self.description = description
        self.series: Dict[str, Dict[object, Number]] = {}

    def add_point(self, series_name: str, x: object, y: Number) -> None:
        """Add one (x, y) observation to the named series."""
        self.series.setdefault(series_name, {})[x] = y

    def add_series(self, series_name: str, points: Mapping[object, Number]) -> None:
        """Add a whole series at once."""
        self.series.setdefault(series_name, {}).update(points)

    def get(self, series_name: str) -> Dict[object, Number]:
        """Return the points of a series (empty dict when absent)."""
        return dict(self.series.get(series_name, {}))

    def render(self, precision: int = 2) -> str:
        """Render the figure as a text table."""
        header = f"{self.name}: {self.description}" if self.description else self.name
        return format_series(self.x_label, self.series, precision=precision, title=header)

    def __str__(self) -> str:
        return self.render()
