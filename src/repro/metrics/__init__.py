"""Metrics: latency/throughput collectors and text reporting for experiments."""

from .collectors import CounterSeries, LatencyCollector, ThroughputMeter, percentile
from .reporting import Figure, format_mapping, format_series, format_table

__all__ = [
    "CounterSeries",
    "Figure",
    "LatencyCollector",
    "ThroughputMeter",
    "format_mapping",
    "format_series",
    "format_table",
    "percentile",
]
