"""Regular-expression and automaton substrate for streaming RPQ evaluation.

Public entry points:

* :func:`repro.regex.parse` — parse the RPQ surface syntax into an AST;
* :func:`repro.regex.compile_query` — build the minimal DFA of a query;
* :func:`repro.regex.analyze` — full query registration (DFA plus the
  suffix-language containment analysis needed for simple-path semantics).
"""

from .ast import (
    Alternation,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    alternate_all,
    concat_all,
)
from .analysis import QueryAnalysis, analyze, has_containment_property, is_restricted_expression
from .dfa import DFA, compile_query, determinize
from .nfa import NFA, build_nfa
from .parser import RegexSyntaxError, parse

__all__ = [
    "Alternation",
    "Concat",
    "DFA",
    "Epsilon",
    "Label",
    "NFA",
    "Optional",
    "Plus",
    "QueryAnalysis",
    "RegexNode",
    "RegexSyntaxError",
    "Star",
    "alternate_all",
    "analyze",
    "build_nfa",
    "compile_query",
    "concat_all",
    "determinize",
    "has_containment_property",
    "is_restricted_expression",
    "parse",
]
