"""Abstract syntax tree for RPQ regular expressions over edge labels.

The paper (Definition 7) defines RPQ regular expressions as::

    R ::= eps | a | R . R | R + R | R*

with the derived forms ``R+`` (one or more repetitions) and ``R?``
(optional).  Labels ("characters" of the alphabet) are arbitrary strings
such as ``follows`` or ``hasCreator`` rather than single characters,
because the alphabet of a streaming graph is its set of edge labels.

Every node knows how to report the label alphabet it mentions and how to
render itself back into the surface syntax used by :mod:`repro.regex.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


class RegexNode:
    """Base class for all regular-expression AST nodes.

    Nodes are immutable value objects: equality and hashing are structural,
    so two independently parsed copies of the same expression compare equal.
    """

    __slots__ = ()

    def labels(self) -> frozenset:
        """Return the set of edge labels mentioned anywhere in this expression."""
        raise NotImplementedError

    def children(self) -> Tuple["RegexNode", ...]:
        """Return the direct sub-expressions of this node (possibly empty)."""
        return ()

    def walk(self) -> Iterator["RegexNode"]:
        """Yield this node and every descendant in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def nullable(self) -> bool:
        """Return ``True`` if the empty word is in the language of this node."""
        raise NotImplementedError

    def size(self) -> int:
        """Query size |Q_R| as defined in §5.1.2.

        The size of a query is the number of labels in the expression plus
        the number of occurrences of ``*`` and ``+``.
        """
        raise NotImplementedError

    def is_recursive(self) -> bool:
        """Return ``True`` if the expression contains a Kleene star or plus."""
        return any(isinstance(node, (Star, Plus)) for node in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self!s})"


@dataclass(frozen=True, repr=False)
class Epsilon(RegexNode):
    """The empty word ``eps``."""

    __slots__ = ()

    def labels(self) -> frozenset:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True, repr=False)
class Label(RegexNode):
    """A single edge label, e.g. ``follows``."""

    name: str

    __slots__ = ("name",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("edge label must be a non-empty string")

    def labels(self) -> frozenset:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class Concat(RegexNode):
    """Concatenation ``left . right``."""

    left: RegexNode
    right: RegexNode

    __slots__ = ("left", "right")

    def labels(self) -> frozenset:
        return self.left.labels() | self.right.labels()

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def size(self) -> int:
        return self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"{_wrap(self.left, for_concat=True)} {_wrap(self.right, for_concat=True)}"


@dataclass(frozen=True, repr=False)
class Alternation(RegexNode):
    """Alternation ``left + right`` (union of languages)."""

    left: RegexNode
    right: RegexNode

    __slots__ = ("left", "right")

    def labels(self) -> frozenset:
        return self.left.labels() | self.right.labels()

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def size(self) -> int:
        return self.left.size() + self.right.size()

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True, repr=False)
class Star(RegexNode):
    """Kleene star ``inner*`` (zero or more repetitions)."""

    inner: RegexNode

    __slots__ = ("inner",)

    def labels(self) -> frozenset:
        return self.inner.labels()

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return True

    def size(self) -> int:
        return self.inner.size() + 1

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True, repr=False)
class Plus(RegexNode):
    """One or more repetitions ``inner+``."""

    inner: RegexNode

    __slots__ = ("inner",)

    def labels(self) -> frozenset:
        return self.inner.labels()

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return self.inner.nullable()

    def size(self) -> int:
        return self.inner.size() + 1

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True, repr=False)
class Optional(RegexNode):
    """Zero or one occurrence ``inner?``."""

    inner: RegexNode

    __slots__ = ("inner",)

    def labels(self) -> frozenset:
        return self.inner.labels()

    def children(self) -> Tuple[RegexNode, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return True

    def size(self) -> int:
        return self.inner.size()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


def _wrap(node: RegexNode, for_concat: bool = False) -> str:
    """Render ``node`` adding parentheses when needed for unambiguous output."""
    text = str(node)
    needs_parens = isinstance(node, Alternation) or (
        for_concat and isinstance(node, Concat) is False and " " in text
    )
    if isinstance(node, Concat) and not for_concat:
        needs_parens = True
    if needs_parens and not _fully_parenthesized(text):
        return f"({text})"
    return text


def _fully_parenthesized(text: str) -> bool:
    """True if ``text`` is one group wrapped in a single pair of parentheses.

    ``(a | a) (a | a)`` starts with ``(`` and ends with ``)`` but the two
    parentheses belong to different groups, so wrapping is still required.
    """
    if not (text.startswith("(") and text.endswith(")")):
        return False
    depth = 0
    for position, character in enumerate(text):
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth == 0:
                return position == len(text) - 1
    return False


def concat_all(nodes) -> RegexNode:
    """Concatenate a sequence of nodes, returning :class:`Epsilon` when empty."""
    nodes = list(nodes)
    if not nodes:
        return Epsilon()
    result = nodes[0]
    for node in nodes[1:]:
        result = Concat(result, node)
    return result


def alternate_all(nodes) -> RegexNode:
    """Build the alternation of a sequence of nodes.

    Raises :class:`ValueError` for an empty sequence because the empty
    alternation (the empty language) is not expressible in the paper's
    RPQ grammar.
    """
    nodes = list(nodes)
    if not nodes:
        raise ValueError("cannot build an alternation of zero expressions")
    result = nodes[0]
    for node in nodes[1:]:
        result = Alternation(result, node)
    return result
