"""Parser for the RPQ regular-expression surface syntax.

The surface syntax accepts the forms used throughout the paper and in
SPARQL 1.1 property paths:

* labels are bare identifiers (``follows``, ``hasCreator``, ``a2q``) or
  arbitrary strings wrapped in angle brackets (``<http://yago/knows>``);
* concatenation is written with whitespace, ``.`` or ``/``
  (``follows mentions``, ``a/b``, ``a . b``);
* alternation is written with ``+`` or ``|`` between sub-expressions
  (``a + b``, ``a | b``) — a trailing/leading ``+`` attached directly to an
  expression (``a+``) is the *one-or-more* postfix operator, matching the
  paper's notation ``R+``;
* postfix operators ``*`` (Kleene star), ``+`` (one or more), ``?``
  (optional);
* parentheses for grouping.

Grammar (recursive descent)::

    expression  := term (('+' | '|') term)*
    term        := factor+
    factor      := atom ('*' | '+' | '?')*
    atom        := LABEL | '(' expression ')'

The ambiguity between ``+`` as alternation and ``+`` as repetition is
resolved lexically: a ``+`` immediately following an atom or a closing
parenthesis (no intervening whitespace) is a postfix repetition, otherwise
it is an alternation, which matches how the paper writes
``(a1 + a2 + ... + ak)+``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from .ast import (
    Alternation,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)

__all__ = ["parse", "RegexSyntaxError"]


class RegexSyntaxError(ValueError):
    """Raised when an RPQ expression cannot be parsed."""

    def __init__(self, message: str, position: int, text: str) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.position = position
        self.text = text


@dataclass(frozen=True)
class _Token:
    kind: str  # 'label', '(', ')', '*', '+', '?', '|', '.', 'postfix+'
    value: str
    position: int


_LABEL_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-:")


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    n = len(text)
    previous_was_atom = False
    while i < n:
        ch = text[i]
        if ch.isspace():
            # whitespace breaks the "immediately follows an atom" adjacency, so
            # "a + b" is an alternation while "a+" is one-or-more repetition
            previous_was_atom = False
            i += 1
            continue
        if ch == "<":
            end = text.find(">", i + 1)
            if end == -1:
                raise RegexSyntaxError("unterminated '<' label", i, text)
            name = text[i + 1 : end]
            if not name:
                raise RegexSyntaxError("empty '<>' label", i, text)
            tokens.append(_Token("label", name, i))
            i = end + 1
            previous_was_atom = True
            continue
        if ch in _LABEL_CHARS:
            start = i
            while i < n and text[i] in _LABEL_CHARS:
                i += 1
            tokens.append(_Token("label", text[start:i], start))
            previous_was_atom = True
            continue
        if ch == "(":
            tokens.append(_Token("(", ch, i))
            i += 1
            previous_was_atom = False
            continue
        if ch == ")":
            tokens.append(_Token(")", ch, i))
            i += 1
            previous_was_atom = True
            continue
        if ch == "*":
            tokens.append(_Token("*", ch, i))
            i += 1
            previous_was_atom = True
            continue
        if ch == "?":
            tokens.append(_Token("?", ch, i))
            i += 1
            previous_was_atom = True
            continue
        if ch == "+":
            kind = "postfix+" if previous_was_atom else "|"
            tokens.append(_Token(kind, ch, i))
            i += 1
            previous_was_atom = kind == "postfix+"
            continue
        if ch == "|":
            tokens.append(_Token("|", ch, i))
            i += 1
            previous_was_atom = False
            continue
        if ch in {".", "/"}:
            tokens.append(_Token(".", ch, i))
            i += 1
            previous_was_atom = False
            continue
        raise RegexSyntaxError(f"unexpected character {ch!r}", i, text)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list produced by :func:`_tokenize`."""

    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def _peek(self) -> Union[_Token, None]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, message: str) -> RegexSyntaxError:
        token = self._peek()
        position = token.position if token is not None else len(self._text)
        return RegexSyntaxError(message, position, self._text)

    def parse_expression(self) -> RegexNode:
        node = self.parse_term()
        while True:
            token = self._peek()
            if token is not None and token.kind == "|":
                self._advance()
                right = self.parse_term()
                node = Alternation(node, right)
            else:
                return node

    def parse_term(self) -> RegexNode:
        factors = [self.parse_factor()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == ".":
                self._advance()
                factors.append(self.parse_factor())
            elif token.kind in {"label", "("}:
                factors.append(self.parse_factor())
            else:
                break
        node = factors[0]
        for factor in factors[1:]:
            node = Concat(node, factor)
        return node

    def parse_factor(self) -> RegexNode:
        node = self.parse_atom()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token.kind == "*":
                self._advance()
                node = Star(node)
            elif token.kind == "postfix+":
                self._advance()
                node = Plus(node)
            elif token.kind == "?":
                self._advance()
                node = Optional(node)
            else:
                return node

    def parse_atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of expression")
        if token.kind == "label":
            self._advance()
            return Label(token.value)
        if token.kind == "(":
            self._advance()
            if self._peek() is not None and self._peek().kind == ")":
                self._advance()
                return Epsilon()
            inner = self.parse_expression()
            closing = self._peek()
            if closing is None or closing.kind != ")":
                raise self._error("expected ')'")
            self._advance()
            return inner
        raise self._error(f"unexpected token {token.value!r}")

    def finished(self) -> bool:
        return self._index == len(self._tokens)


def parse(expression: Union[str, RegexNode]) -> RegexNode:
    """Parse ``expression`` into a :class:`~repro.regex.ast.RegexNode`.

    Passing an already-built AST node returns it unchanged so that every
    public API accepting a query can accept either a string or an AST.
    """
    if isinstance(expression, RegexNode):
        return expression
    if not isinstance(expression, str):
        raise TypeError(f"expected str or RegexNode, got {type(expression).__name__}")
    text = expression.strip()
    if not text:
        raise RegexSyntaxError("empty expression", 0, expression)
    tokens = _tokenize(text)
    parser = _Parser(tokens, text)
    node = parser.parse_expression()
    if not parser.finished():
        raise parser._error("trailing input after expression")
    return node
