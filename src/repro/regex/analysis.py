"""Automaton analysis for simple-path (RSPQ) evaluation.

Section 4 of the paper relies on properties of the query automaton:

* the **suffix language** ``[s]`` of a state ``s`` (Definition 14): all
  words that take the automaton from ``s`` to a final state;
* **suffix-language containment** between states, precomputed once at
  query-registration time and used by the streaming algorithm to detect
  conflicts (Definition 16);
* the **containment property** (Definition 15): if it holds for every pair
  of states on an accepting path, the query is conflict-free on *any*
  graph and RSPQ runs with the same amortized cost as RAPQ.

This module packages those computations into a :class:`QueryAnalysis`
value object that the RSPQ engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple, Union

from .ast import Alternation, Concat, Label, RegexNode, Star
from .dfa import DFA, compile_query
from .parser import parse

__all__ = [
    "QueryAnalysis",
    "analyze",
    "suffix_containment_matrix",
    "has_containment_property",
    "is_restricted_expression",
]


def suffix_containment_matrix(dfa: DFA) -> Dict[Tuple[int, int], bool]:
    """Compute ``contains[(s, t)] = ([s] ⊇ [t])`` for every pair of states.

    The suffix language of state ``s`` is the language of the automaton
    restarted at ``s``; containment is decided with a product reachability
    search on the completed automaton (no accepting state of ``t``'s run may
    be reached while ``s``'s run is non-accepting).
    """
    matrix: Dict[Tuple[int, int], bool] = {}
    for s in dfa.states:
        for t in dfa.states:
            matrix[(s, t)] = dfa.language_contains(s, t)
    return matrix


def _states_on_accepting_paths(dfa: DFA) -> Set[int]:
    """Return states that lie on some path from the start state to a final state."""
    reachable = {dfa.start}
    stack = [dfa.start]
    while stack:
        state = stack.pop()
        for _, target in dfa.out_transitions(state):
            if target not in reachable:
                reachable.add(target)
                stack.append(target)
    # backward from finals
    predecessors: Dict[int, Set[int]] = {}
    for (source, _label), target in dfa.transitions.items():
        predecessors.setdefault(target, set()).add(source)
    productive: Set[int] = set(dfa.finals)
    stack = list(dfa.finals)
    while stack:
        state = stack.pop()
        for prev in predecessors.get(state, ()):
            if prev not in productive:
                productive.add(prev)
                stack.append(prev)
    return reachable & productive


def _successor_pairs(dfa: DFA, useful: Set[int]) -> Set[Tuple[int, int]]:
    """Return pairs ``(s, t)`` where ``t`` is reachable from ``s`` (a successor)."""
    pairs: Set[Tuple[int, int]] = set()
    for s in useful:
        seen = {s}
        stack = [s]
        while stack:
            state = stack.pop()
            for _, target in dfa.out_transitions(state):
                if target in useful and target not in seen:
                    seen.add(target)
                    stack.append(target)
        for t in seen - {s}:
            pairs.add((s, t))
    return pairs


def has_containment_property(dfa: DFA, matrix: Dict[Tuple[int, int], bool] = None) -> bool:
    """Check the suffix-language containment property (Definition 15).

    The property holds if, for every pair ``(s, t)`` of useful states where
    ``t`` is a successor of ``s``, ``[s] ⊇ [t]``.  Queries whose automaton
    has this property are conflict-free on every graph.
    """
    if matrix is None:
        matrix = suffix_containment_matrix(dfa)
    useful = _states_on_accepting_paths(dfa)
    for s, t in _successor_pairs(dfa, useful):
        if not matrix[(s, t)]:
            return False
    return True


def is_restricted_expression(expression: Union[str, RegexNode]) -> bool:
    """Detect the "restricted" regular expressions highlighted in §5.5.

    The paper observes that Q1 (``a*``), Q4 (``(a1+...+ak)*``) and Q11
    (``a1 . a2 ... ak``) are *restricted* regular expressions — a syntactic
    class that implies conflict-freedom on any graph.  We use a conservative
    syntactic test covering exactly those shapes:

    * a concatenation of plain labels (no recursion at all), or
    * a single Kleene *star* over a label or over an alternation of labels.

    A ``+`` over an alternation (Q9) is *not* restricted: its automaton lacks
    the suffix-containment property (the start state's language excludes the
    empty word while the accepting state's includes it), which is consistent
    with Q9 not appearing among the universally successful queries of
    Table 4.
    """
    node = parse(expression)
    if _is_label_concatenation(node):
        return True
    if isinstance(node, Star) and _is_label_alternation(node.inner):
        return True
    return False


def _is_label_concatenation(node: RegexNode) -> bool:
    if isinstance(node, Label):
        return True
    if isinstance(node, Concat):
        return _is_label_concatenation(node.left) and _is_label_concatenation(node.right)
    return False


def _is_label_alternation(node: RegexNode) -> bool:
    if isinstance(node, Label):
        return True
    if isinstance(node, Alternation):
        return _is_label_alternation(node.left) and _is_label_alternation(node.right)
    return False


@dataclass
class QueryAnalysis:
    """Everything the streaming engines need to know about a registered query.

    Attributes:
        expression: the parsed regular expression.
        dfa: the minimal DFA of the expression.
        containment: suffix-language containment matrix ``(s, t) -> bool``.
        containment_property: whether Definition 15 holds (query is
            conflict-free on any graph).
        restricted: whether the expression is syntactically restricted
            (sufficient condition for conflict-freedom).
        alphabet: edge labels mentioned by the query; tuples with other
            labels are discarded by the engine before processing (§5.2).
    """

    expression: RegexNode
    dfa: DFA
    containment: Dict[Tuple[int, int], bool]
    containment_property: bool
    restricted: bool
    alphabet: FrozenSet[str] = field(default_factory=frozenset)

    def suffix_contains(self, s: int, t: int) -> bool:
        """Return ``True`` iff ``[s] ⊇ [t]``."""
        return self.containment[(s, t)]

    def conflict_free_by_query(self) -> bool:
        """Return ``True`` when the query alone guarantees conflict-freedom."""
        return self.containment_property or self.restricted

    @property
    def num_states(self) -> int:
        """Number of states ``k`` of the minimal automaton."""
        return self.dfa.num_states

    def __str__(self) -> str:
        return (
            f"QueryAnalysis({self.expression}, k={self.num_states}, "
            f"containment_property={self.containment_property}, restricted={self.restricted})"
        )


def analyze(expression: Union[str, RegexNode]) -> QueryAnalysis:
    """Register a query: parse, compile to a minimal DFA and precompute analysis.

    This corresponds to the query-registration step of §4: the suffix-language
    containment relation is computed once and reused by the streaming
    algorithm to detect conflicts.
    """
    node = parse(expression)
    dfa = compile_query(node)
    matrix = suffix_containment_matrix(dfa)
    return QueryAnalysis(
        expression=node,
        dfa=dfa,
        containment=matrix,
        containment_property=has_containment_property(dfa, matrix),
        restricted=is_restricted_expression(node),
        alphabet=frozenset(node.labels()),
    )
