"""Deterministic finite automata for RPQ evaluation.

The streaming algorithms of the paper are driven by the minimal DFA
``A = (S, Sigma, delta, s0, F)`` of the query's regular expression
(Definition 10).  This module provides:

* subset construction from the Thompson NFA (:func:`determinize`);
* Hopcroft minimization (:meth:`DFA.minimize`);
* a convenience :func:`compile_query` that goes straight from an expression
  to the minimal DFA;
* the language-algebra operations needed by the suffix-language containment
  analysis of §4 (completion, product, complement, emptiness and
  containment checks).

States are integers ``0..k-1`` with ``0`` always being the start state of a
freshly constructed DFA, matching the state numbering used in the paper's
figures (e.g. the automaton of Q1 in Figure 1(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from .ast import RegexNode
from .nfa import NFA, build_nfa
from .parser import parse

__all__ = ["DFA", "determinize", "compile_query"]

_DEAD_STATE = -1


@dataclass
class DFA:
    """A deterministic finite automaton over edge labels.

    Attributes:
        num_states: number of states; states are ``0 .. num_states - 1``.
        start: the start state ``s0``.
        finals: the set of accepting states ``F``.
        transitions: partial transition function ``(state, label) -> state``.
            Missing entries mean the word is rejected (implicit dead state).
        alphabet: the label alphabet ``Sigma`` of the query.
    """

    num_states: int
    start: int
    finals: FrozenSet[int]
    transitions: Dict[Tuple[int, str], int]
    alphabet: FrozenSet[str]

    # ------------------------------------------------------------------ #
    # Basic automaton operations
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> range:
        """Return the state ids as a range object."""
        return range(self.num_states)

    def delta(self, state: int, label: str) -> Optional[int]:
        """Return ``delta(state, label)`` or ``None`` when undefined."""
        return self.transitions.get((state, label))

    def transitions_on(self, label: str) -> List[Tuple[int, int]]:
        """Return all pairs ``(s, t)`` with ``t = delta(s, label)``, sorted.

        This is the inner loop of Algorithms RAPQ and RSPQ ("foreach s, t in S
        where t = delta(s, l)"), so the result is precomputed and cached.  The
        pairs are sorted (not left in ``transitions`` dict order, which varies
        with the hash seed across interpreter invocations) because the order
        evaluators visit transitions shapes result-emission order within a
        timestamp: a canonical order keeps checkpoints order-exact even when
        they are restored in a different process.
        """
        cache = self.__dict__.setdefault("_transitions_on_cache", {})
        if label not in cache:
            cache[label] = sorted(
                (source, target)
                for (source, lbl), target in self.transitions.items()
                if lbl == label
            )
        return cache[label]

    def dense_row(self, label: str) -> List[int]:
        """Return ``delta(·, label)`` as a dense row indexed by state.

        Row entry ``s`` is ``delta(s, label)``, with ``-1`` encoding the
        implicit dead state.  The columnar evaluator stacks these rows into
        a ``label_id × state`` transition table so its hot loop replaces
        the per-tuple :meth:`transitions_on` list walk with one indexed
        load.  Rows are cached per label (the transition function is
        immutable).
        """
        cache = self.__dict__.setdefault("_dense_row_cache", {})
        row = cache.get(label)
        if row is None:
            row = [_DEAD_STATE] * self.num_states
            for source, target in self.transitions_on(label):
                row[source] = target
            cache[label] = row
        return row

    def out_transitions(self, state: int) -> List[Tuple[str, int]]:
        """Return the ``(label, target)`` pairs leaving ``state``."""
        cache = self.__dict__.setdefault("_out_transitions_cache", {})
        if state not in cache:
            cache[state] = [
                (label, target)
                for (source, label), target in self.transitions.items()
                if source == state
            ]
        return cache[state]

    def extended_delta(self, state: int, word: Iterable[str]) -> Optional[int]:
        """Return ``delta*(state, word)`` or ``None`` if the run dies."""
        current: Optional[int] = state
        for label in word:
            if current is None:
                return None
            current = self.delta(current, label)
        return current

    def accepts(self, word: Iterable[str]) -> bool:
        """Return ``True`` if ``word`` is in the language of the automaton."""
        state = self.extended_delta(self.start, word)
        return state is not None and state in self.finals

    def accepts_empty_word(self) -> bool:
        """Return ``True`` if the start state is accepting (epsilon in L)."""
        return self.start in self.finals

    # ------------------------------------------------------------------ #
    # Language algebra (used for suffix-language containment)
    # ------------------------------------------------------------------ #

    def completed(self, alphabet: Optional[Iterable[str]] = None) -> "DFA":
        """Return an equivalent DFA whose transition function is total.

        A dead state is appended (as state ``num_states``) when any
        transition is missing over ``alphabet`` (defaults to this DFA's own
        alphabet).
        """
        sigma = frozenset(alphabet) if alphabet is not None else self.alphabet
        transitions = dict(self.transitions)
        dead = self.num_states
        needs_dead = False
        for state in range(self.num_states):
            for label in sigma:
                if (state, label) not in transitions:
                    transitions[(state, label)] = dead
                    needs_dead = True
        if not needs_dead:
            return DFA(self.num_states, self.start, self.finals, transitions, sigma)
        for label in sigma:
            transitions[(dead, label)] = dead
        return DFA(self.num_states + 1, self.start, self.finals, transitions, sigma)

    def with_start(self, state: int) -> "DFA":
        """Return a copy of this DFA whose start state is ``state``.

        Used to reason about the suffix language ``[s]`` of a state
        (Definition 14): the suffix language of ``s`` is exactly the language
        of the automaton restarted at ``s``.
        """
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} out of range 0..{self.num_states - 1}")
        return DFA(self.num_states, state, self.finals, dict(self.transitions), self.alphabet)

    def is_empty_language(self) -> bool:
        """Return ``True`` if no accepting state is reachable from the start."""
        return not self._reachable_finals(self.start)

    def _reachable_finals(self, source: int) -> bool:
        seen = {source}
        stack = [source]
        while stack:
            state = stack.pop()
            if state in self.finals:
                return True
            for _, target in self.out_transitions(state):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return False

    def language_contains(self, other_start: int, candidate_start: int) -> bool:
        """Return ``True`` iff ``[other_start] ⊇ [candidate_start]`` within this DFA.

        Implements suffix-language containment by checking emptiness of
        ``L(A restarted at candidate_start) ∩ complement(L(A restarted at
        other_start))`` on the completed automaton via a product reachability
        search.
        """
        complete = self.completed()
        # product search over (candidate_state, other_state)
        start_pair = (candidate_start, other_start)
        seen = {start_pair}
        stack = [start_pair]
        while stack:
            cand, other = stack.pop()
            cand_accepting = cand in complete.finals
            other_accepting = other in complete.finals
            if cand_accepting and not other_accepting:
                return False
            for label in complete.alphabet:
                next_pair = (
                    complete.transitions[(cand, label)],
                    complete.transitions[(other, label)],
                )
                if next_pair not in seen:
                    seen.add(next_pair)
                    stack.append(next_pair)
        return True

    # ------------------------------------------------------------------ #
    # Minimization
    # ------------------------------------------------------------------ #

    def trimmed(self) -> "DFA":
        """Return an equivalent DFA keeping only useful states.

        A state is useful if it is reachable from the start state and can
        reach a final state.  The start state is always kept even when its
        language is empty so the result remains a well-formed automaton.
        """
        reachable = self._forward_reachable(self.start)
        productive = self._backward_reachable(self.finals)
        useful = sorted(state for state in reachable if state in productive)
        if not useful or self.start not in productive:
            # empty language: single non-accepting start state
            return DFA(1, 0, frozenset(), {}, self.alphabet)
        remap = {old: new for new, old in enumerate(useful)}
        transitions = {
            (remap[s], label): remap[t]
            for (s, label), t in self.transitions.items()
            if s in remap and t in remap
        }
        finals = frozenset(remap[s] for s in self.finals if s in remap)
        return DFA(len(useful), remap[self.start], finals, transitions, self.alphabet)

    def _forward_reachable(self, source: int) -> Set[int]:
        seen = {source}
        stack = [source]
        while stack:
            state = stack.pop()
            for _, target in self.out_transitions(state):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def _backward_reachable(self, sources: Iterable[int]) -> Set[int]:
        predecessors: Dict[int, Set[int]] = {}
        for (s, _label), t in self.transitions.items():
            predecessors.setdefault(t, set()).add(s)
        seen = set(sources)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for prev in predecessors.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return seen

    def minimize(self) -> "DFA":
        """Return the minimal DFA equivalent to this one (Hopcroft's algorithm)."""
        trimmed = self.trimmed()
        complete = trimmed.completed()
        alphabet = sorted(complete.alphabet)
        states = list(range(complete.num_states))
        finals = set(complete.finals)
        non_finals = set(states) - finals

        # Hopcroft partition refinement
        partition: List[Set[int]] = [block for block in (finals, non_finals) if block]
        if finals and non_finals:
            worklist: List[Set[int]] = [set(min(finals, non_finals, key=len))]
        elif partition:
            worklist = [set(partition[0])]
        else:  # pragma: no cover - a DFA always has at least one state
            worklist = []

        # predecessor index: label -> target -> set of sources
        predecessors: Dict[str, Dict[int, Set[int]]] = {label: {} for label in alphabet}
        for (source, label), target in complete.transitions.items():
            predecessors[label].setdefault(target, set()).add(source)

        while worklist:
            splitter = worklist.pop()
            for label in alphabet:
                pred_index = predecessors[label]
                incoming: Set[int] = set()
                for target in splitter:
                    incoming |= pred_index.get(target, set())
                if not incoming:
                    continue
                new_partition: List[Set[int]] = []
                for block in partition:
                    intersection = block & incoming
                    difference = block - incoming
                    if intersection and difference:
                        new_partition.append(intersection)
                        new_partition.append(difference)
                        if block in worklist:
                            worklist.remove(block)
                            worklist.append(intersection)
                            worklist.append(difference)
                        else:
                            worklist.append(min(intersection, difference, key=len))
                    else:
                        new_partition.append(block)
                partition = new_partition

        # Rebuild DFA on the partition blocks; put the start block first so the
        # start state is numbered 0 as in the paper's figures.
        block_of: Dict[int, int] = {}
        ordered_blocks: List[Set[int]] = []
        start_block_index = None
        for block in partition:
            if complete.start in block:
                start_block_index = len(ordered_blocks)
            ordered_blocks.append(block)
        if start_block_index is None:  # pragma: no cover - defensive
            raise RuntimeError("start state missing from Hopcroft partition")
        # reorder so start block first, stable order for determinism
        ordered_blocks = (
            [ordered_blocks[start_block_index]]
            + ordered_blocks[:start_block_index]
            + ordered_blocks[start_block_index + 1 :]
        )
        for index, block in enumerate(ordered_blocks):
            for state in block:
                block_of[state] = index

        transitions: Dict[Tuple[int, str], int] = {}
        for (source, label), target in complete.transitions.items():
            transitions[(block_of[source], label)] = block_of[target]
        finals_blocks = frozenset(block_of[s] for s in complete.finals)
        minimal = DFA(
            num_states=len(ordered_blocks),
            start=block_of[complete.start],
            finals=finals_blocks,
            transitions=transitions,
            alphabet=complete.alphabet,
        )
        # Trimming again drops the dead state introduced by completion.
        return minimal.trimmed()

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def to_dot(self) -> str:
        """Render the automaton in Graphviz dot format (for debugging/docs)."""
        lines = ["digraph dfa {", "  rankdir=LR;", '  node [shape=circle];']
        for state in self.states:
            shape = "doublecircle" if state in self.finals else "circle"
            lines.append(f'  s{state} [shape={shape}, label="s{state}"];')
        lines.append(f"  __start [shape=point]; __start -> s{self.start};")
        for (source, label), target in sorted(self.transitions.items()):
            lines.append(f'  s{source} -> s{target} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"DFA(states={self.num_states}, start={self.start}, "
            f"finals={sorted(self.finals)}, |Sigma|={len(self.alphabet)})"
        )


def determinize(nfa: NFA) -> DFA:
    """Subset construction from a Thompson NFA to a DFA."""
    alphabet = frozenset(nfa.alphabet)
    start_set = nfa.epsilon_closure({nfa.start})
    subset_ids: Dict[FrozenSet[int], int] = {start_set: 0}
    transitions: Dict[Tuple[int, str], int] = {}
    finals: Set[int] = set()
    worklist: List[FrozenSet[int]] = [start_set]
    if nfa.accept in start_set:
        finals.add(0)
    while worklist:
        subset = worklist.pop()
        source_id = subset_ids[subset]
        for label in alphabet:
            moved = nfa.move(subset, label)
            if not moved:
                continue
            target_set = nfa.epsilon_closure(moved)
            if target_set not in subset_ids:
                subset_ids[target_set] = len(subset_ids)
                worklist.append(target_set)
                if nfa.accept in target_set:
                    finals.add(subset_ids[target_set])
            transitions[(source_id, label)] = subset_ids[target_set]
    return DFA(
        num_states=len(subset_ids),
        start=0,
        finals=frozenset(finals),
        transitions=transitions,
        alphabet=alphabet,
    )


def compile_query(expression: Union[str, RegexNode]) -> DFA:
    """Compile an RPQ expression into its minimal DFA.

    This is the query-registration step of the paper: Thompson construction,
    subset construction, then Hopcroft minimization.
    """
    node = parse(expression)
    nfa = build_nfa(node)
    dfa = determinize(nfa)
    return dfa.minimize()
