"""Thompson construction of a non-deterministic finite automaton.

The paper (§2) builds the query automaton in two steps: Thompson's
construction from the regular expression to an NFA, followed by subset
construction and Hopcroft minimization to obtain the minimal DFA that
drives the streaming algorithms.  This module implements the first step.

States are plain integers.  Epsilon moves are stored separately from
labelled moves so that the subset construction in :mod:`repro.regex.dfa`
can compute epsilon closures cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union

from .ast import (
    Alternation,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
)
from .parser import parse

__all__ = ["NFA", "build_nfa"]


@dataclass
class NFA:
    """A non-deterministic finite automaton with epsilon transitions.

    Attributes:
        start: the unique start state.
        accept: the unique accepting state (Thompson fragments always have
            exactly one).
        transitions: labelled moves, ``state -> label -> set of states``.
        epsilon: epsilon moves, ``state -> set of states``.
        alphabet: all labels appearing on any transition.
    """

    start: int
    accept: int
    transitions: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)
    epsilon: Dict[int, Set[int]] = field(default_factory=dict)
    alphabet: Set[str] = field(default_factory=set)

    @property
    def states(self) -> Set[int]:
        """Return all states reachable through declared transitions plus endpoints."""
        found: Set[int] = {self.start, self.accept}
        for source, by_label in self.transitions.items():
            found.add(source)
            for targets in by_label.values():
                found.update(targets)
        for source, targets in self.epsilon.items():
            found.add(source)
            found.update(targets)
        return found

    def add_transition(self, source: int, label: str, target: int) -> None:
        """Record a labelled transition ``source --label--> target``."""
        self.transitions.setdefault(source, {}).setdefault(label, set()).add(target)
        self.alphabet.add(label)

    def add_epsilon(self, source: int, target: int) -> None:
        """Record an epsilon transition ``source --eps--> target``."""
        self.epsilon.setdefault(source, set()).add(target)

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """Return the set of states reachable from ``states`` via epsilon moves."""
        closure: Set[int] = set(states)
        stack: List[int] = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: Iterable[int], label: str) -> FrozenSet[int]:
        """Return the states reachable from ``states`` by consuming ``label``."""
        result: Set[int] = set()
        for state in states:
            result.update(self.transitions.get(state, {}).get(label, ()))
        return frozenset(result)

    def accepts(self, word: Iterable[str]) -> bool:
        """Simulate the NFA on ``word`` (a sequence of labels)."""
        current = self.epsilon_closure({self.start})
        for label in word:
            current = self.epsilon_closure(self.move(current, label))
            if not current:
                return False
        return self.accept in current


class _FragmentBuilder:
    """Builds Thompson fragments bottom-up while sharing one state counter."""

    def __init__(self) -> None:
        self._next_state = 0
        self.nfa = NFA(start=-1, accept=-1)

    def _new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def build(self, node: RegexNode) -> Tuple[int, int]:
        """Return the (start, accept) pair of the fragment for ``node``."""
        if isinstance(node, Epsilon):
            start, accept = self._new_state(), self._new_state()
            self.nfa.add_epsilon(start, accept)
            return start, accept
        if isinstance(node, Label):
            start, accept = self._new_state(), self._new_state()
            self.nfa.add_transition(start, node.name, accept)
            return start, accept
        if isinstance(node, Concat):
            left_start, left_accept = self.build(node.left)
            right_start, right_accept = self.build(node.right)
            self.nfa.add_epsilon(left_accept, right_start)
            return left_start, right_accept
        if isinstance(node, Alternation):
            start, accept = self._new_state(), self._new_state()
            left_start, left_accept = self.build(node.left)
            right_start, right_accept = self.build(node.right)
            self.nfa.add_epsilon(start, left_start)
            self.nfa.add_epsilon(start, right_start)
            self.nfa.add_epsilon(left_accept, accept)
            self.nfa.add_epsilon(right_accept, accept)
            return start, accept
        if isinstance(node, Star):
            start, accept = self._new_state(), self._new_state()
            inner_start, inner_accept = self.build(node.inner)
            self.nfa.add_epsilon(start, inner_start)
            self.nfa.add_epsilon(start, accept)
            self.nfa.add_epsilon(inner_accept, inner_start)
            self.nfa.add_epsilon(inner_accept, accept)
            return start, accept
        if isinstance(node, Plus):
            inner_start, inner_accept = self.build(node.inner)
            start, accept = self._new_state(), self._new_state()
            self.nfa.add_epsilon(start, inner_start)
            self.nfa.add_epsilon(inner_accept, inner_start)
            self.nfa.add_epsilon(inner_accept, accept)
            return start, accept
        if isinstance(node, Optional):
            start, accept = self._new_state(), self._new_state()
            inner_start, inner_accept = self.build(node.inner)
            self.nfa.add_epsilon(start, inner_start)
            self.nfa.add_epsilon(start, accept)
            self.nfa.add_epsilon(inner_accept, accept)
            return start, accept
        raise TypeError(f"unsupported regex node {type(node).__name__}")


def build_nfa(expression: Union[str, RegexNode]) -> NFA:
    """Build a Thompson NFA for ``expression`` (a string or parsed AST)."""
    node = parse(expression)
    builder = _FragmentBuilder()
    start, accept = builder.build(node)
    nfa = builder.nfa
    nfa.start = start
    nfa.accept = accept
    return nfa
