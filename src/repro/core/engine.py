"""High-level streaming RPQ engine.

:class:`StreamingRPQEngine` is the main public entry point of the library.
It manages one or more registered persistent RPQs over a single incoming
streaming graph, dispatching every tuple to the per-query evaluators
(arbitrary or simple path semantics, or the recomputation baseline) and
exposing their result streams.

The per-query evaluators implement the algorithms of the paper; the engine
adds the operational concerns a user of the system needs: query
registration and removal, per-query statistics, and optional latency
instrumentation used by the experiment harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..metrics.collectors import LatencyCollector
from ..regex.analysis import QueryAnalysis, analyze
from .baseline import SnapshotRecomputeBaseline
from .columnar.batch import ColumnarBatch
from .columnar.evaluator import ColumnarRAPQEvaluator
from .results import ResultStream
from .rspq import RSPQEvaluator

__all__ = ["RegisteredQuery", "StreamingRPQEngine", "make_evaluator"]

#: Path-semantics / execution-mode names accepted by the engine.
SEMANTICS = ("arbitrary", "simple", "baseline")


def make_evaluator(
    query: Union[str, QueryAnalysis],
    window: WindowSpec,
    semantics: str = "arbitrary",
    max_nodes_per_tree: Optional[int] = None,
    partition: Optional[Tuple[int, int]] = None,
):
    """Build the evaluator implementing ``semantics`` for ``query``.

    ``semantics`` is one of ``"arbitrary"`` (Algorithm RAPQ), ``"simple"``
    (Algorithm RSPQ) or ``"baseline"`` (per-tuple snapshot recomputation).
    ``partition`` optionally makes the evaluator one root partition
    ``(index, count)`` of a split query — only Algorithm RAPQ's per-root
    spanning trees partition cleanly, so other semantics reject it.

    ``"arbitrary"`` builds the columnar evaluator — a behaviourally
    identical :class:`~repro.core.rapq.RAPQEvaluator` subclass whose hot
    path runs over interned ids and dense transition tables (see
    :mod:`repro.core.columnar`).
    """
    if semantics == "arbitrary":
        return ColumnarRAPQEvaluator(query, window, partition=partition)
    if partition is not None:
        raise ValueError(
            f"only 'arbitrary' semantics supports root partitioning, got {semantics!r}: "
            f"its per-root spanning trees are independent, which is what makes the "
            f"state splittable"
        )
    if semantics == "simple":
        return RSPQEvaluator(query, window, max_nodes_per_tree=max_nodes_per_tree)
    if semantics == "baseline":
        return SnapshotRecomputeBaseline(query, window)
    raise ValueError(f"unknown semantics {semantics!r}; expected one of {SEMANTICS}")


@dataclass
class RegisteredQuery:
    """A persistent query registered with the engine.

    Attributes:
        name: user-facing identifier of the query.
        analysis: compiled query (DFA + suffix-containment analysis).
        semantics: ``"arbitrary"``, ``"simple"`` or ``"baseline"``.
        evaluator: the underlying incremental evaluator.
        latency: per-tuple processing latency samples (seconds), recorded
            only for tuples relevant to this query.
    """

    name: str
    analysis: QueryAnalysis
    semantics: str
    evaluator: object
    latency: LatencyCollector = field(default_factory=LatencyCollector)

    @property
    def results(self) -> ResultStream:
        """The append-only result stream of this query."""
        return self.evaluator.results

    def answer_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """All distinct result pairs reported so far."""
        return self.evaluator.answer_pairs()


class StreamingRPQEngine:
    """Persistent RPQ evaluation engine over a single streaming graph.

    Example:
        >>> from repro import StreamingRPQEngine, WindowSpec, sgt
        >>> engine = StreamingRPQEngine(WindowSpec(size=10, slide=1))
        >>> engine.register("follows-chain", "follows+")
        >>> _ = engine.process(sgt(1, "alice", "bob", "follows"))
        >>> _ = engine.process(sgt(2, "bob", "carol", "follows"))
        >>> sorted(engine.query("follows-chain").answer_pairs())
        [('alice', 'bob'), ('alice', 'carol'), ('bob', 'carol')]
    """

    def __init__(self, window: WindowSpec, measure_latency: bool = False) -> None:
        self.window = window
        self.measure_latency = measure_latency
        self._queries: Dict[str, RegisteredQuery] = {}
        # label -> names of queries whose alphabet contains it, built lazily
        # and invalidated on (de)registration: a tuple is dispatched only to
        # the queries it can possibly affect, every other evaluator just has
        # its clock advanced (observe()).
        self._routes: Dict[str, frozenset] = {}
        self._tuples_seen = 0

    # ------------------------------------------------------------------ #
    # Query management
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        query: Union[str, QueryAnalysis],
        semantics: str = "arbitrary",
        max_nodes_per_tree: Optional[int] = None,
        partition: Optional[Tuple[int, int]] = None,
    ) -> RegisteredQuery:
        """Register a persistent query under ``name`` and return its handle.

        ``partition=(index, count)`` registers one root partition of a
        split query (``"arbitrary"`` semantics only); the caller is
        responsible for registering the sibling partitions — typically on
        other shards — and for merging their result streams.

        Raises:
            ValueError: if a query with the same name is already registered,
                the semantics name is unknown, or ``partition`` is combined
                with semantics other than ``"arbitrary"``.
        """
        if name in self._queries:
            raise ValueError(f"a query named {name!r} is already registered")
        analysis = query if isinstance(query, QueryAnalysis) else analyze(query)
        evaluator = make_evaluator(analysis, self.window, semantics, max_nodes_per_tree, partition)
        registered = RegisteredQuery(name=name, analysis=analysis, semantics=semantics, evaluator=evaluator)
        self._queries[name] = registered
        self._routes.clear()
        return registered

    def register_evaluator(self, name: str, evaluator, semantics: str = "arbitrary") -> RegisteredQuery:
        """Register a pre-built evaluator (e.g. restored from a checkpoint).

        Unlike :meth:`register`, no fresh evaluator is constructed: the given
        one is adopted as-is, keeping its accumulated window, index and
        result-stream state.  The evaluator's window must match the engine's.

        Raises:
            ValueError: if a query with the same name is already registered,
                the semantics name is unknown, or the windows differ.
        """
        if name in self._queries:
            raise ValueError(f"a query named {name!r} is already registered")
        if semantics not in SEMANTICS:
            raise ValueError(f"unknown semantics {semantics!r}; expected one of {SEMANTICS}")
        window = getattr(evaluator, "window", None)
        if window is not None and (window.size, window.slide) != (self.window.size, self.window.slide):
            raise ValueError(f"evaluator window {window} does not match engine window {self.window}")
        registered = RegisteredQuery(
            name=name, analysis=evaluator.analysis, semantics=semantics, evaluator=evaluator
        )
        self._queries[name] = registered
        self._routes.clear()
        return registered

    def deregister(self, name: str) -> None:
        """Remove a registered query (its accumulated results are discarded)."""
        if name not in self._queries:
            raise KeyError(f"no query named {name!r} is registered")
        del self._queries[name]
        self._routes.clear()

    def query(self, name: str) -> RegisteredQuery:
        """Return the handle of the query registered under ``name``."""
        try:
            return self._queries[name]
        except KeyError:
            raise KeyError(f"no query named {name!r} is registered") from None

    def queries(self) -> List[RegisteredQuery]:
        """Return the handles of all registered queries."""
        return list(self._queries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    # ------------------------------------------------------------------ #
    # Stream processing
    # ------------------------------------------------------------------ #

    @property
    def tuples_seen(self) -> int:
        """Number of tuples pushed into the engine so far."""
        return self._tuples_seen

    def _route(self, label: str) -> frozenset:
        """Names of the queries whose alphabet contains ``label`` (cached)."""
        routed = self._routes.get(label)
        if routed is None:
            routed = self._routes[label] = frozenset(
                name
                for name, registered in self._queries.items()
                if label in registered.analysis.alphabet
            )
        return routed

    def process(self, tup: StreamingGraphTuple) -> Dict[str, List[Tuple[Vertex, Vertex]]]:
        """Dispatch one tuple to every registered query.

        The label-routing map sends the tuple only to queries whose
        alphabet contains its label; every other evaluator just advances
        its clock (``observe``), which is what full dispatch would have
        done to it anyway.  Routed tuples are exactly the relevant ones,
        so latency samples (when ``measure_latency`` is on) cover the same
        tuples as before without a second relevance test.

        Returns a mapping ``query name -> newly reported pairs``; queries
        that produced no new result for this tuple are omitted.
        """
        self._tuples_seen += 1
        new_results: Dict[str, List[Tuple[Vertex, Vertex]]] = {}
        routed = self._route(tup.label)
        timestamp = tup.timestamp
        for name, registered in self._queries.items():
            if name in routed:
                if self.measure_latency:
                    started = time.perf_counter()
                    pairs = registered.evaluator.process(tup)
                    registered.latency.record(time.perf_counter() - started)
                else:
                    pairs = registered.evaluator.process(tup)
                if pairs:
                    new_results[name] = pairs
            else:
                observe = getattr(registered.evaluator, "observe", None)
                if observe is not None:
                    observe(timestamp)
                else:
                    registered.evaluator.process(tup)
        return new_results

    def process_batch(self, batch) -> List[Tuple[str, Vertex, Vertex, int]]:
        """Dispatch a whole batch; return ``(name, source, target, timestamp)`` events.

        ``batch`` is a :class:`~repro.core.columnar.batch.ColumnarBatch`
        (or any sequence of tuples, converted on entry).  Columnar
        evaluators take the batch whole
        (:meth:`~repro.core.columnar.evaluator.ColumnarRAPQEvaluator.process_batch`);
        any other evaluator falls back to label-routed tuple-at-a-time
        dispatch.  Events are returned in *tuple-major* order — all events
        of tuple ``i`` (across queries, in registration order) before any
        event of tuple ``i+1`` — exactly the order per-tuple dispatch
        through :meth:`process` produces, which the runtime's result
        merging relies on.
        """
        if not isinstance(batch, ColumnarBatch):
            batch = ColumnarBatch.from_tuples(list(batch))
        count = len(batch)
        self._tuples_seen += count
        if count == 0:
            return []
        # (tuple_index, query_position, name, source, target); the stable
        # sort below restores tuple-major emission order across queries.
        entries: List[Tuple[int, int, str, Vertex, Vertex]] = []
        for position, (name, registered) in enumerate(self._queries.items()):
            evaluator = registered.evaluator
            batch_method = getattr(evaluator, "process_batch", None)
            if batch_method is not None:
                for tuple_index, source, target in batch_method(batch):
                    entries.append((tuple_index, position, name, source, target))
                continue
            observe = getattr(evaluator, "observe", None)
            alphabet = registered.analysis.alphabet
            for tuple_index, tup in enumerate(batch.tuples()):
                if observe is None or tup.label in alphabet:
                    for source, target in evaluator.process(tup):
                        entries.append((tuple_index, position, name, source, target))
                else:
                    observe(tup.timestamp)
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        timestamps = batch.timestamps
        return [
            (name, source, target, timestamps[tuple_index])
            for tuple_index, _position, name, source, target in entries
        ]

    def process_stream(
        self,
        tuples: Iterable[StreamingGraphTuple],
        on_result: Optional[Callable[[str, Vertex, Vertex, int], None]] = None,
    ) -> Dict[str, ResultStream]:
        """Process an entire stream.

        Args:
            tuples: the input stream, in timestamp order.
            on_result: optional callback invoked as ``on_result(query_name,
                source, target, timestamp)`` for every newly reported pair —
                this is the "real-time notification" hook of the paper's
                motivating example.

        Returns:
            mapping of query name to its result stream.
        """
        for tup in tuples:
            produced = self.process(tup)
            if on_result is not None:
                for name, pairs in produced.items():
                    for source, target in pairs:
                        on_result(name, source, target, tup.timestamp)
        return {name: registered.results for name, registered in self._queries.items()}

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Return a per-query summary: result counts, index size, statistics."""
        report: Dict[str, Dict[str, object]] = {}
        for name, registered in self._queries.items():
            evaluator = registered.evaluator
            report[name] = {
                "semantics": registered.semantics,
                "states": registered.analysis.num_states,
                "distinct_results": len(registered.results.distinct_pairs),
                "events": len(registered.results),
                "index": evaluator.index_size(),
                "stats": dict(getattr(evaluator, "stats", {})),
            }
            if self.measure_latency and len(registered.latency) > 0:
                report[name]["latency"] = registered.latency.summary()
        return report

    def __str__(self) -> str:
        return (
            f"StreamingRPQEngine(|W|={self.window.size}, beta={self.window.slide}, "
            f"queries={sorted(self._queries)})"
        )
