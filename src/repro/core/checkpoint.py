"""Checkpointing: persist and restore the state of an RAPQ evaluator.

Long-running persistent queries need to survive process restarts without
replaying the entire stream.  A checkpoint captures everything Algorithm
RAPQ maintains between tuples:

* the window content ``G_{W,tau}`` (labelled edges with timestamps);
* the Delta tree index (every spanning tree with parent pointers and path
  timestamps);
* the append-only result stream (positive and negative events);
* the clock (current time and last expiry boundary) and the statistics.

Checkpoints are plain JSON-compatible dictionaries, so they can be written
with :func:`json.dump` and shipped anywhere.  Vertices must be JSON scalars
(strings or integers); the loader restores integer vertices exactly and
leaves strings untouched.

Only the arbitrary-path evaluator is checkpointable: RSPQ trees contain
per-occurrence node instances whose identity is positional, which would
require a heavier encoding, and the recomputation baseline has no state
worth saving beyond the window itself.

Checkpoints are *order-exact* (format 2): besides the state itself they
record every iteration order the algorithms observe — tree-node insertion
order, the ``vertex -> tree roots`` reverse index, and the snapshot's
backward adjacency.  A restored evaluator therefore emits future results in
exactly the same order as the original would have, which is what lets the
runtime migrate a live query between shards without perturbing the global
result stream.  Format-1 checkpoints (pre-ordering) still load, with
orders derived instead of reproduced.

Format 2 additionally carries the *partitioning* sections (see
:mod:`repro.core.partition` and ``docs/CHECKPOINT_FORMAT.md``): an
``"emission"`` section tagging every result event with the relevant-tuple
index that produced it, and — for evaluators that are one root partition
of a split query — a ``"partition"`` section recording ``index``/``count``
so the restored evaluator keeps admitting exactly its own tree roots.
Checkpoints that predate these sections still load: emission keys are then
synthesized as ``1..n`` (strictly increasing, so any later merge preserves
the recorded history order exactly).
"""

from __future__ import annotations

import json
import math
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import CheckpointError
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis
from .rapq import RAPQEvaluator

__all__ = [
    "checkpoint_rapq",
    "restore_rapq",
    "encode_rapq",
    "decode_rapq",
    "save_checkpoint",
    "load_checkpoint",
    "canonical_bytes",
    "state_digest",
    "decode_state",
]

#: Format marker so that future layout changes can stay backward compatible.
#: Version 2 added the iteration orders (reverse index, backward adjacency)
#: that make restore order-exact; version-1 checkpoints still load.
_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)

# JSON has no infinity literal that round-trips portably, so sentinel strings
# encode the root timestamp (+inf) and deletion markers (-inf).
_POS_INF = "+inf"
_NEG_INF = "-inf"


def _encode_timestamp(value: float) -> Union[float, str]:
    if value == math.inf:
        return _POS_INF
    if value == -math.inf:
        return _NEG_INF
    return value


def _decode_timestamp(value: Union[float, str]) -> float:
    if value == _POS_INF:
        return math.inf
    if value == _NEG_INF:
        return -math.inf
    return value


def _check_vertex(vertex) -> None:
    if not isinstance(vertex, (str, int)):
        raise TypeError(
            f"checkpointing requires str or int vertices, got {type(vertex).__name__}: {vertex!r}"
        )


def checkpoint_rapq(evaluator: RAPQEvaluator) -> Dict:
    """Capture the complete state of an RAPQ evaluator as a JSON-compatible dict.

    Evaluators that maintain a non-scalar internal representation (the
    columnar evaluator's interned state) expose ``checkpoint_state()``,
    which resolves into this same format-2 dict; dispatching on it here
    keeps every producer of checkpoints (durability, migration, the CLI)
    format-agnostic.
    """
    state_fn = getattr(evaluator, "checkpoint_state", None)
    if state_fn is not None:
        return state_fn()
    edges = []
    for edge in evaluator.snapshot.edges():
        _check_vertex(edge.source)
        _check_vertex(edge.target)
        edges.append([edge.source, edge.target, edge.label, edge.timestamp])

    trees = []
    for tree in evaluator.index.trees():
        nodes = []
        for node in tree.nodes():
            if node.parent is None:
                continue  # the root is implied by the tree entry
            nodes.append(
                {
                    "vertex": node.vertex,
                    "state": node.state,
                    "parent_vertex": node.parent[0],
                    "parent_state": node.parent[1],
                    "timestamp": _encode_timestamp(node.timestamp),
                }
            )
        trees.append(
            {
                "root": tree.root_vertex,
                "root_cycle_reported": bool(getattr(tree, "root_cycle_reported", False)),
                "nodes": nodes,
            }
        )

    events = [
        {
            "timestamp": event.timestamp,
            "source": event.source,
            "target": event.target,
            "positive": event.positive,
        }
        for event in evaluator.results.events
    ]

    # The iteration orders the algorithms observe (format 2): which trees a
    # tuple visits, and which incoming edge reconnects an expired node first.
    # Recording them makes restore order-exact, so a migrated query keeps
    # emitting results in exactly the order the unmigrated one would have.
    reverse_index = [[vertex, list(roots)] for vertex, roots in evaluator.index.reverse_index().items()]
    in_adjacency = [
        [target, [[source, label] for source, label in keys]]
        for target, keys in evaluator.snapshot.in_order()
    ]

    state = {
        "format": _FORMAT_VERSION,
        "query": str(evaluator.analysis.expression),
        "window": {"size": evaluator.window.size, "slide": evaluator.window.slide},
        "result_semantics": evaluator.result_semantics,
        "current_time": evaluator.current_time,
        "last_expiry_boundary": evaluator._last_expiry_boundary,
        "stats": dict(evaluator.stats),
        "snapshot": edges,
        "trees": trees,
        "reverse_index": reverse_index,
        "in_adjacency": in_adjacency,
        "results": events,
        # Emission keys (one per result event) make the stream mergeable
        # with sibling root partitions; see repro.core.partition.
        "emission": {"seq": evaluator.emission_seq, "keys": list(evaluator.emission_keys)},
    }
    if evaluator.partition is not None:
        state["partition"] = {
            "index": evaluator.partition.index,
            "count": evaluator.partition.count,
        }
    return state


def restore_rapq(
    state: Dict,
    query: Optional[Union[str, QueryAnalysis]] = None,
) -> RAPQEvaluator:
    """Rebuild an RAPQ evaluator from a checkpoint produced by :func:`checkpoint_rapq`.

    Args:
        state: the checkpoint dictionary.
        query: optionally a pre-compiled :class:`QueryAnalysis` (or expression
            string) to avoid recompiling; it must describe the same expression
            that was checkpointed.

    Raises:
        ValueError: if the checkpoint format is unknown or the supplied query
            does not match the checkpointed one.
    """
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint must decode to a dict of sections, got {type(state).__name__}"
        )
    if state.get("format") not in _SUPPORTED_FORMATS:
        raise CheckpointError(
            f"unsupported checkpoint format: {state.get('format')!r} "
            f"(this build reads formats {_SUPPORTED_FORMATS})"
        )
    order_exact = state["format"] >= 2
    try:
        return _restore_rapq_checked(state, query, order_exact)
    except (KeyError, TypeError, IndexError) as exc:
        # A missing section or a malformed row inside one: report *which*
        # query and what was being decoded instead of the raw traceback.
        raise CheckpointError(
            f"corrupt checkpoint for query {state.get('query')!r}: "
            f"{type(exc).__name__} while restoring sections ({exc})"
        ) from exc


def _restore_rapq_checked(state: Dict, query, order_exact: bool) -> RAPQEvaluator:
    """The body of :func:`restore_rapq` (section decoding, wrapped above)."""
    expression = state["query"]
    if query is None:
        query = expression
    elif isinstance(query, QueryAnalysis):
        if str(query.expression) != expression:
            raise ValueError(
                f"checkpoint was taken for query {expression!r}, got analysis for {query.expression}"
            )
    elif str(query) != expression:
        # A plain string must match after parsing/rendering; be permissive and
        # just recompile from the checkpointed expression.
        query = expression

    window = WindowSpec(size=state["window"]["size"], slide=state["window"]["slide"])
    partition = state.get("partition")
    if partition is not None:
        partition = (partition["index"], partition["count"])
    evaluator = RAPQEvaluator(
        query,
        window,
        result_semantics=state.get("result_semantics", "implicit"),
        partition=partition,
    )

    for source, target, label, timestamp in state["snapshot"]:
        evaluator.snapshot.insert(source, target, label, timestamp)

    for tree_state in state["trees"]:
        tree = evaluator.index.get_or_create(tree_state["root"])
        if tree_state.get("root_cycle_reported"):
            tree.root_cycle_reported = True
        if order_exact:
            # Nodes were recorded in the source tree's insertion order;
            # adopt them verbatim so node iteration (and with it expiry
            # scans and result emission order) reproduces exactly.
            tree.restore_nodes(
                [
                    (
                        (node["vertex"], node["state"]),
                        (node["parent_vertex"], node["parent_state"]),
                        _decode_timestamp(node["timestamp"]),
                    )
                    for node in tree_state["nodes"]
                ]
            )
            continue
        # Format 1: parents must exist before children; insert in passes
        # until stable (node order is not reproduced exactly).
        pending = list(tree_state["nodes"])
        while pending:
            progressed = False
            remaining = []
            for node in pending:
                parent_key = (node["parent_vertex"], node["parent_state"])
                if parent_key in tree:
                    tree.add_node(
                        (node["vertex"], node["state"]),
                        parent=parent_key,
                        timestamp=_decode_timestamp(node["timestamp"]),
                    )
                    evaluator.index.register_node(tree, node["vertex"])
                    progressed = True
                else:
                    remaining.append(node)
            if not progressed:
                raise ValueError(
                    f"corrupt checkpoint: {len(remaining)} tree nodes have no reachable parent "
                    f"in the tree rooted at {tree_state['root']!r}"
                )
            pending = remaining

    if order_exact:
        # Adopt the recorded iteration orders verbatim: the tree reverse
        # index (which trees a tuple visits, in order) and the snapshot's
        # backward adjacency (which parent reconnects an expired node).
        reverse_index = {}
        for vertex, roots in state["reverse_index"]:
            for root in roots:
                if evaluator.index.get(root) is None:
                    raise ValueError(f"corrupt checkpoint: reverse index names unknown tree root {root!r}")
            reverse_index[vertex] = list(roots)
        evaluator.index.restore_reverse_index(reverse_index)
        evaluator.snapshot.restore_in_order(
            [(target, [(source, label) for source, label in keys]) for target, keys in state["in_adjacency"]]
        )

    for event in state["results"]:
        if event["positive"]:
            evaluator.results.report(event["source"], event["target"], event["timestamp"])
        else:
            evaluator.results.invalidate(event["source"], event["target"], event["timestamp"])

    emission = state.get("emission")
    if emission is not None:
        keys = list(emission["keys"])
        if len(keys) != len(state["results"]):
            raise ValueError(
                f"corrupt checkpoint: {len(keys)} emission keys for "
                f"{len(state['results'])} result events"
            )
        evaluator._emission_keys = keys
        evaluator._emission_seq = int(emission["seq"])
    else:
        # Pre-emission checkpoint: synthesize strictly increasing keys so
        # the recorded history order survives any later merge verbatim,
        # and resume the counter past them.
        evaluator._emission_keys = list(range(1, len(state["results"]) + 1))
        evaluator._emission_seq = len(state["results"])

    evaluator._current_time = state.get("current_time")
    evaluator._last_expiry_boundary = state.get("last_expiry_boundary")
    evaluator.stats.update(state.get("stats", {}))
    return evaluator


def encode_rapq(evaluator: RAPQEvaluator) -> bytes:
    """Serialize one evaluator's complete state to a compact byte string.

    Bytes in, bytes out: the blob is UTF-8 JSON of :func:`checkpoint_rapq`,
    so it can travel over a process boundary (the runtime's worker protocol
    ships query registration and checkpoints this way), be written to disk,
    or be posted to an external store — no pickling of rich objects.
    """
    return canonical_bytes(checkpoint_rapq(evaluator))


def decode_state(blob: bytes, what: str = "checkpoint") -> Dict:
    """Decode a checkpoint byte blob back into its state dict.

    Raises:
        CheckpointError: the blob is not valid UTF-8 JSON; the message
            carries ``what`` plus the byte offset where decoding failed,
            so a truncated or torn blob is diagnosable at a glance.
    """
    try:
        text = blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"corrupt {what}: not UTF-8 at byte {exc.start} of {len(blob)} ({exc.reason})"
        ) from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt {what}: invalid JSON at offset {exc.pos} of {len(text)} "
            f"(line {exc.lineno}, column {exc.colno}): {exc.msg}"
        ) from exc


def decode_rapq(blob: bytes, query: Optional[Union[str, QueryAnalysis]] = None) -> RAPQEvaluator:
    """Rebuild an evaluator from an :func:`encode_rapq` byte string.

    Raises:
        CheckpointError: the blob is truncated, not valid JSON, or decodes
            to a state dict with missing or malformed sections.
    """
    return restore_rapq(decode_state(blob, what="evaluator checkpoint"), query=query)


def canonical_bytes(state: Dict) -> bytes:
    """The canonical compact-JSON encoding of a checkpoint state dict.

    One encoding (no whitespace, UTF-8) shared by the worker protocol, the
    durability subsystem's files, and :func:`state_digest` — so byte sizes
    and digests computed anywhere agree.
    """
    return json.dumps(state, separators=(",", ":")).encode("utf-8")


def state_digest(state: Dict) -> str:
    """A short stable digest of a state dict (CRC32 of :func:`canonical_bytes`).

    Used by the durability manifest to detect a checkpoint file that was
    damaged between writing and recovery; CRC32 matches the WAL's per-record
    checksum strength (corruption detection, not authentication).
    """
    return f"{zlib.crc32(canonical_bytes(state)) & 0xFFFFFFFF:08x}"


def save_checkpoint(evaluator: RAPQEvaluator, path: Union[str, Path]) -> Path:
    """Write the evaluator's checkpoint to ``path`` as JSON; returns the path."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(checkpoint_rapq(evaluator), handle)
    return path


def load_checkpoint(
    path: Union[str, Path], query: Optional[Union[str, QueryAnalysis]] = None
) -> RAPQEvaluator:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: the file is truncated, not valid JSON, or holds a
            state dict with missing or malformed sections.
    """
    path = Path(path)
    with path.open("rb") as handle:
        return restore_rapq(decode_state(handle.read(), what=f"checkpoint file {path}"), query=query)
