"""The Delta tree index used by Algorithm RAPQ (Definition 12).

``Delta`` is a collection of spanning trees, one per source vertex ``x`` of
the window snapshot.  A tree node is a (vertex, automaton-state) pair; a
node ``(u, s)`` in the tree ``T_x`` witnesses a path from ``x`` to ``u`` in
the window whose label takes the automaton from the start state to ``s``.
Each node stores a parent pointer and the *path timestamp*: the minimum
edge timestamp along the tree path from the root, which determines when the
node expires.

The index also maintains a reverse map ``vertex -> set of tree roots`` so
that an incoming edge ``(u, v)`` only visits the trees that actually
contain ``u`` — this is the hash-index optimization the paper's prototype
uses for efficient node look-ups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph.tuples import Vertex
from .partition import vertex_sort_key

__all__ = ["NodeKey", "TreeNode", "SpanningTree", "TreeIndex", "ROOT_TIMESTAMP"]

# A tree node is identified by its (vertex, state) pair.
NodeKey = Tuple[Vertex, int]

# The root (x, s0) represents the empty path from x to itself; it never
# expires, which we model with an infinite timestamp.
ROOT_TIMESTAMP = math.inf


@dataclass
class TreeNode:
    """A node ``(vertex, state)`` of a spanning tree.

    Attributes:
        vertex: the graph vertex ``u``.
        state: the automaton state ``s``.
        parent: key of the parent node, or ``None`` for the root.
        timestamp: minimum edge timestamp along the path from the root.
        children: keys of the node's children in the tree.
    """

    vertex: Vertex
    state: int
    parent: Optional[NodeKey]
    timestamp: float
    children: Set[NodeKey] = field(default_factory=set)

    @property
    def key(self) -> NodeKey:
        """The ``(vertex, state)`` identity of this node."""
        return (self.vertex, self.state)

    def __str__(self) -> str:
        return f"({self.vertex},{self.state})@{self.timestamp}"


class SpanningTree:
    """A spanning tree ``T_x`` of the product graph rooted at ``(x, s0)``.

    Under arbitrary path semantics each (vertex, state) pair appears at most
    once in the tree (second invariant of Lemma 1), so nodes are keyed by
    that pair.
    """

    def __init__(self, root_vertex: Vertex, start_state: int) -> None:
        self.root_vertex = root_vertex
        self.start_state = start_state
        # Canonical position of this tree in cross-tree iteration; computed
        # once (vertex_sort_key is pure) and used by TreeIndex.trees() /
        # trees_containing() to make result-emission order partition-independent.
        self.order_key = vertex_sort_key(root_vertex)
        root = TreeNode(vertex=root_vertex, state=start_state, parent=None, timestamp=ROOT_TIMESTAMP)
        self._nodes: Dict[NodeKey, TreeNode] = {root.key: root}
        # How many states each vertex currently occupies in this tree; used to
        # keep the index's reverse map up to date.
        self._vertex_degree: Dict[Vertex, int] = {root_vertex: 1}

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    @property
    def root_key(self) -> NodeKey:
        """Key of the root node ``(x, s0)``."""
        return (self.root_vertex, self.start_state)

    @property
    def root(self) -> TreeNode:
        """The root node object."""
        return self._nodes[self.root_key]

    def get(self, key: NodeKey) -> Optional[TreeNode]:
        """Return the node with ``key`` or ``None``."""
        return self._nodes.get(key)

    def __contains__(self, key: NodeKey) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[TreeNode]:
        """Iterate over every node of the tree (including the root)."""
        return iter(list(self._nodes.values()))

    def node_keys(self) -> List[NodeKey]:
        """Return the keys of every node of the tree."""
        return list(self._nodes.keys())

    def contains_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` appears in the tree in some state."""
        return self._vertex_degree.get(vertex, 0) > 0

    def states_of(self, vertex: Vertex) -> List[int]:
        """Return the automaton states in which ``vertex`` appears in this tree."""
        return [state for (v, state) in self._nodes if v == vertex]

    def path_to_root(self, key: NodeKey) -> List[NodeKey]:
        """Return the keys on the path from the root to ``key`` (root first)."""
        path: List[NodeKey] = []
        current: Optional[NodeKey] = key
        while current is not None:
            path.append(current)
            node = self._nodes.get(current)
            if node is None:
                raise KeyError(f"node {current} not in tree rooted at {self.root_vertex}")
            current = node.parent
        path.reverse()
        return path

    def subtree_keys(self, key: NodeKey) -> List[NodeKey]:
        """Return the keys of the subtree rooted at ``key`` (including it)."""
        if key not in self._nodes:
            return []
        collected: List[NodeKey] = []
        stack = [key]
        while stack:
            current = stack.pop()
            collected.append(current)
            stack.extend(self._nodes[current].children)
        return collected

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_node(self, key: NodeKey, parent: NodeKey, timestamp: float) -> TreeNode:
        """Insert a new node under ``parent``; the key must not exist yet."""
        if key in self._nodes:
            raise ValueError(f"node {key} already present in tree rooted at {self.root_vertex}")
        if parent not in self._nodes:
            raise KeyError(f"parent {parent} not in tree rooted at {self.root_vertex}")
        vertex, state = key
        node = TreeNode(vertex=vertex, state=state, parent=parent, timestamp=timestamp)
        self._nodes[key] = node
        self._nodes[parent].children.add(key)
        self._vertex_degree[vertex] = self._vertex_degree.get(vertex, 0) + 1
        return node

    def reparent(self, key: NodeKey, new_parent: NodeKey, timestamp: float) -> TreeNode:
        """Move an existing node under ``new_parent`` and refresh its timestamp.

        This is the "refresh" branch of Algorithm Insert: a fresher path to an
        already-present node updates its parent pointer and timestamp without
        revisiting its descendants.
        """
        node = self._nodes[key]
        if new_parent not in self._nodes:
            raise KeyError(f"parent {new_parent} not in tree rooted at {self.root_vertex}")
        if key == new_parent:
            raise ValueError("a node cannot become its own parent")
        if node.parent is not None:
            self._nodes[node.parent].children.discard(key)
        node.parent = new_parent
        node.timestamp = timestamp
        self._nodes[new_parent].children.add(key)
        return node

    def remove(self, key: NodeKey) -> Optional[TreeNode]:
        """Detach and remove a single node (its children keep their parent pointer).

        Callers removing a whole subtree should use :meth:`remove_many` with
        the subtree's keys so that child links stay consistent.
        """
        node = self._nodes.pop(key, None)
        if node is None:
            return None
        if node.parent is not None and node.parent in self._nodes:
            self._nodes[node.parent].children.discard(key)
        degree = self._vertex_degree.get(node.vertex, 0) - 1
        if degree <= 0:
            self._vertex_degree.pop(node.vertex, None)
        else:
            self._vertex_degree[node.vertex] = degree
        return node

    def remove_many(self, keys: Iterator[NodeKey]) -> List[TreeNode]:
        """Remove a batch of nodes and return the removed node objects."""
        removed: List[TreeNode] = []
        for key in list(keys):
            node = self.remove(key)
            if node is not None:
                removed.append(node)
        return removed

    def restore_nodes(self, entries: List[Tuple[NodeKey, NodeKey, float]]) -> None:
        """Adopt checkpointed non-root nodes verbatim, in the recorded order.

        Unlike repeated :meth:`add_node` calls, this tolerates entries whose
        parent appears later in the list (a node reparented under a younger
        node keeps its original insertion position), so the node iteration
        order of the restored tree is *exactly* the checkpointed one.  That
        order drives expiry scans, which drive result emission order — the
        property the runtime's live-migration parity relies on.

        Args:
            entries: ``(key, parent_key, timestamp)`` triples in the source
                tree's node-insertion order (the root is implied).

        Raises:
            ValueError: if the tree already has non-root nodes, a key repeats,
                or the entries do not form one tree rooted at the root node
                (unknown parent or an unreachable cycle).
        """
        if len(self._nodes) > 1:
            raise ValueError("restore_nodes requires a tree holding only its root")
        for key, parent_key, timestamp in entries:
            if key in self._nodes:
                raise ValueError(f"corrupt checkpoint: node {key} appears twice")
            vertex, state = key
            self._nodes[key] = TreeNode(vertex=vertex, state=state, parent=parent_key, timestamp=timestamp)
            self._vertex_degree[vertex] = self._vertex_degree.get(vertex, 0) + 1
        for key, node in self._nodes.items():
            if node.parent is None:
                continue
            parent = self._nodes.get(node.parent)
            if parent is None:
                raise ValueError(
                    f"corrupt checkpoint: node {key} has no reachable parent "
                    f"in the tree rooted at {self.root_vertex!r}"
                )
            parent.children.add(key)
        # Every node must hang off the root; a parent cycle among restored
        # nodes would otherwise go unnoticed until expiry walks the tree.
        reachable = 0
        stack = [self.root_key]
        while stack:
            reachable += 1
            stack.extend(self._nodes[stack.pop()].children)
        if reachable != len(self._nodes):
            raise ValueError(
                f"corrupt checkpoint: {len(self._nodes) - reachable} nodes have no "
                f"reachable parent in the tree rooted at {self.root_vertex!r}"
            )

    def __str__(self) -> str:
        return f"SpanningTree(root={self.root_vertex}, nodes={len(self._nodes)})"


class TreeIndex:
    """The Delta index: one spanning tree per source vertex (Definition 12)."""

    def __init__(self, start_state: int) -> None:
        self._start_state = start_state
        self._trees: Dict[Vertex, SpanningTree] = {}
        # vertex -> tree roots whose tree contains the vertex, kept as dict
        # keys (an insertion-ordered set).  Iteration over trees is *not*
        # this insertion order: trees_containing()/trees() sort by the
        # canonical root key, so same-timestamp emission order is
        # independent of hash seeds, of tree-creation history, and of how
        # trees are distributed over root partitions.
        self._vertex_to_roots: Dict[Vertex, Dict[Vertex, None]] = {}

    # ------------------------------------------------------------------ #
    # Tree management
    # ------------------------------------------------------------------ #

    @property
    def start_state(self) -> int:
        """The automaton start state ``s0`` used for every root."""
        return self._start_state

    def get(self, root_vertex: Vertex) -> Optional[SpanningTree]:
        """Return the tree rooted at ``root_vertex`` or ``None``."""
        return self._trees.get(root_vertex)

    def get_or_create(self, root_vertex: Vertex) -> SpanningTree:
        """Return the tree rooted at ``root_vertex``, creating it if needed."""
        tree = self._trees.get(root_vertex)
        if tree is None:
            tree = SpanningTree(root_vertex, self._start_state)
            self._trees[root_vertex] = tree
            self._vertex_to_roots.setdefault(root_vertex, {})[root_vertex] = None
        return tree

    def discard_tree(self, root_vertex: Vertex) -> None:
        """Drop an entire tree (used when a tree shrinks back to just its root)."""
        tree = self._trees.pop(root_vertex, None)
        if tree is None:
            return
        for node in tree.nodes():
            roots = self._vertex_to_roots.get(node.vertex)
            if roots is not None:
                roots.pop(root_vertex, None)
                if not roots:
                    del self._vertex_to_roots[node.vertex]

    def trees(self) -> Iterator[SpanningTree]:
        """Iterate over every spanning tree, in canonical root order.

        Cross-tree iteration order determines the order same-timestamp
        results are emitted, so it is *canonical* — sorted by
        :func:`~repro.core.partition.vertex_sort_key` of the root — rather
        than historical: the order then depends only on which trees exist,
        which is what lets a root-partitioned evaluator reproduce the
        unpartitioned emission order exactly (each partition iterates the
        same canonical subsequence it owns).
        """
        return iter(sorted(self._trees.values(), key=attrgetter("order_key")))

    def trees_containing(self, vertex: Vertex) -> List[SpanningTree]:
        """Return the trees that contain ``vertex``, in canonical root order.

        This is the reverse index that lets the per-tuple loop of Algorithm
        RAPQ visit only trees that can actually extend with the new edge;
        like :meth:`trees` it yields canonical (root-sorted) order so that
        emission order is independent of tree-creation history and of any
        root partitioning.
        """
        roots = self._vertex_to_roots.get(vertex)
        if not roots:
            return []
        found = [self._trees[root] for root in list(roots) if root in self._trees]
        if len(found) > 1:
            found.sort(key=attrgetter("order_key"))
        return found

    # ------------------------------------------------------------------ #
    # Node bookkeeping (keeps the reverse index in sync)
    # ------------------------------------------------------------------ #

    def register_node(self, tree: SpanningTree, vertex: Vertex) -> None:
        """Record that ``vertex`` now appears in ``tree``."""
        self._vertex_to_roots.setdefault(vertex, {})[tree.root_vertex] = None

    def unregister_node(self, tree: SpanningTree, vertex: Vertex) -> None:
        """Record that ``vertex`` may have left ``tree`` (checked against the tree)."""
        if tree.contains_vertex(vertex):
            return
        roots = self._vertex_to_roots.get(vertex)
        if roots is not None:
            roots.pop(tree.root_vertex, None)
            if not roots:
                del self._vertex_to_roots[vertex]

    def reverse_index(self) -> Dict[Vertex, List[Vertex]]:
        """The reverse map ``vertex -> tree roots`` in its recorded order.

        Checkpoints record this map so a restored evaluator visits exactly
        the trees the original would have.  The recorded *order* is kept
        for checkpoint-format stability, but iteration no longer depends
        on it: :meth:`trees_containing` sorts by the canonical root key.
        """
        return {vertex: list(roots) for vertex, roots in self._vertex_to_roots.items()}

    def restore_reverse_index(self, entries: Dict[Vertex, List[Vertex]]) -> None:
        """Adopt a recorded reverse map verbatim (checkpoint restore path)."""
        self._vertex_to_roots = {vertex: {root: None for root in roots} for vertex, roots in entries.items()}

    # ------------------------------------------------------------------ #
    # Statistics (Figure 5 reports these)
    # ------------------------------------------------------------------ #

    @property
    def num_trees(self) -> int:
        """Number of spanning trees currently materialized."""
        return len(self._trees)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes across all spanning trees (including roots)."""
        return sum(len(tree) for tree in self._trees.values())

    def size_summary(self) -> Dict[str, int]:
        """Return ``{"trees": ..., "nodes": ...}`` for index-size reporting."""
        return {"trees": self.num_trees, "nodes": self.num_nodes}

    def __len__(self) -> int:
        return len(self._trees)

    def __str__(self) -> str:
        return f"TreeIndex(trees={self.num_trees}, nodes={self.num_nodes})"
