"""Root partitioning: split one RAPQ evaluator's state by spanning-tree root.

Algorithm RAPQ keeps one spanning tree per *source vertex* (the tree
root), and every result event of a tree — positive reports and deletion
invalidations alike — names that root as its ``source``.  Trees never
interact: each tree's evolution is a deterministic function of the tuple
stream and the window snapshot alone.  That makes the evaluator's state
*naturally partitionable by tree root*: give each of ``K`` partitions the
full window snapshot, let it materialize only the trees whose root it
owns, and the union of the partitions' result streams equals the
unpartitioned evaluator's stream.

This module holds the three pieces that partitioning needs:

* :func:`root_partition` — the stable CRC32 ownership function (the same
  process-stable CRC32 the runtime's ``hash`` sharding policy uses for
  query placement, so partition layouts are reproducible across processes
  and checkpoints);
* :class:`RootPartition` — a validated ``(index, count)`` pair with the
  ``admits`` filter an evaluator applies at tree-creation time;
* :func:`partition_checkpoint` — split one order-exact evaluator
  checkpoint (:func:`repro.core.checkpoint.checkpoint_rapq` format 2)
  into ``count`` self-contained per-partition checkpoints, the operation
  behind the runtime's live whale-splitting.

Exact-order merging
===================

The unpartitioned evaluator emits same-timestamp results in the order it
visits trees, so recovering its *exact* stream from per-partition streams
needs two invariants, both provided by :mod:`repro.core`:

1. **canonical tree order** — :class:`~repro.core.tree_index.TreeIndex`
   iterates trees in :func:`vertex_sort_key` order of their roots, which
   is independent of how trees are distributed over partitions;
2. **emission keys** — the evaluator tags every result event with the
   index of the relevant tuple that produced it (identical across
   partitions, because relevance is a pure label test).

A k-way merge of the partition streams by ``(emission key,
vertex_sort_key(event.source))`` then reproduces the unpartitioned stream
bit-for-bit; :func:`repro.runtime.merger.merge_partition_events`
implements it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..graph.tuples import Vertex

__all__ = [
    "root_partition",
    "vertex_sort_key",
    "RootPartition",
    "partition_checkpoint",
]


def root_partition(vertex: Vertex, count: int) -> int:
    """Return the partition (in ``[0, count)``) owning trees rooted at ``vertex``.

    Uses CRC32 of the vertex's string form rather than :func:`hash` so the
    assignment is deterministic across processes (``PYTHONHASHSEED``
    randomizes ``str`` hashing) — the same choice as the runtime's
    ``hash`` sharding policy, and for the same reason: checkpoints taken
    in one process must describe the partition layout any other process
    computes.

    Example:
        >>> root_partition("alice", 4) == root_partition("alice", 4)
        True
        >>> all(0 <= root_partition(v, 3) < 3 for v in ("a", "b", 7))
        True
    """
    if count < 1:
        raise ValueError(f"partition count must be >= 1, got {count}")
    return zlib.crc32(str(vertex).encode("utf-8")) % count


def vertex_sort_key(vertex: Vertex) -> Tuple[int, str, Union[int, float]]:
    """A total-order key over vertices, stable across processes and types.

    :class:`~repro.core.tree_index.TreeIndex` iterates spanning trees in
    this order of their roots, which makes same-timestamp result emission
    order *canonical*: it depends only on which trees exist, never on
    tree-creation history or on how trees are spread over partitions.
    Integer vertices order among themselves numerically, strings
    lexicographically, and anything else by its ``repr`` — the groups are
    kept disjoint so mixed-type vertex sets never hit an unorderable
    comparison.
    """
    if isinstance(vertex, str):
        return (1, vertex, 0)
    if isinstance(vertex, (int, float)):
        return (0, "", vertex)
    return (2, f"{type(vertex).__name__}:{vertex!r}", 0)


@dataclass(frozen=True)
class RootPartition:
    """One partition of a root-partitioned evaluator: ``index`` of ``count``.

    Attributes:
        index: this partition's position in ``[0, count)``.
        count: total number of partitions the query is split into.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"partition count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(f"partition index {self.index} out of range [0, {self.count})")

    @classmethod
    def coerce(cls, value: Union["RootPartition", Tuple[int, int], None]) -> Optional["RootPartition"]:
        """Build a partition from an ``(index, count)`` pair (or pass through)."""
        if value is None or isinstance(value, RootPartition):
            return value
        index, count = value
        return cls(index=int(index), count=int(count))

    def admits(self, vertex: Vertex) -> bool:
        """Whether trees rooted at ``vertex`` belong to this partition."""
        return root_partition(vertex, self.count) == self.index

    def to_wire(self) -> Tuple[int, int]:
        """Compact ``(index, count)`` form for protocol frames and checkpoints."""
        return (self.index, self.count)

    def __str__(self) -> str:
        return f"p{self.index}/{self.count}"


def _zeroed(stats: Dict[str, float]) -> Dict[str, float]:
    """A stats dict with the same keys and zero values (same int/float types)."""
    return {key: type(value)(0) for key, value in stats.items()}


def partition_checkpoint(state: Dict, count: int) -> List[Dict]:
    """Split one evaluator checkpoint into ``count`` per-partition checkpoints.

    Every output is a complete, independently restorable
    :func:`~repro.core.checkpoint.checkpoint_rapq` dict carrying a
    ``"partition"`` section: partition ``i`` keeps the full window
    snapshot (any tree can extend through any window edge, so each
    partition maintains its own snapshot copy), the trees whose root it
    owns, the reverse-index entries of those trees, and the result events
    those trees produced — results follow their tree because an event's
    ``source`` *is* its tree root.  Emission keys are split alongside the
    events; historical stats stay on partition 0 so aggregating partition
    stats never double-counts the pre-split history.

    Args:
        state: an order-exact (format 2) checkpoint of an *unpartitioned*
            evaluator with implicit result semantics, taken by a build
            that records emission keys.
        count: number of partitions to split into (>= 1).

    Raises:
        ValueError: if the checkpoint is too old (format 1 or missing the
            emission section), already partitioned, or uses explicit
            result semantics (expiry-time invalidations are triggered by
            window movement, which partitions hosted on different shards
            do not observe identically).
    """
    if count < 1:
        raise ValueError(f"partition count must be >= 1, got {count}")
    if state.get("format") != 2:
        raise ValueError(f"only format-2 checkpoints can be partitioned, got format {state.get('format')!r}")
    if state.get("partition") is not None:
        raise ValueError("checkpoint is already partitioned; partitions cannot be re-split")
    if state.get("result_semantics", "implicit") != "implicit":
        raise ValueError(
            "only evaluators with 'implicit' result semantics can be partitioned "
            f"(got {state.get('result_semantics')!r}); explicit expiry invalidations "
            "depend on window movement each partition observes independently"
        )
    emission = state.get("emission")
    if emission is None:
        raise ValueError(
            "checkpoint lacks the 'emission' section (emission keys); it was taken "
            "by a build that predates partitioned execution and cannot be split exactly"
        )
    events = state["results"]
    keys = emission["keys"]
    if len(keys) != len(events):
        raise ValueError(f"corrupt checkpoint: {len(keys)} emission keys for {len(events)} result events")

    # One pass over each collection: bucket by owning partition.
    part_events: List[List[Dict]] = [[] for _ in range(count)]
    part_keys: List[List[int]] = [[] for _ in range(count)]
    for event, key in zip(events, keys):
        owner = root_partition(event["source"], count)
        part_events[owner].append(event)
        part_keys[owner].append(key)
    part_trees: List[List[Dict]] = [[] for _ in range(count)]
    for tree in state["trees"]:
        part_trees[root_partition(tree["root"], count)].append(tree)
    part_reverse: List[List[List]] = [[] for _ in range(count)]
    for vertex, roots in state["reverse_index"]:
        buckets: Dict[int, List] = {}
        for root in roots:
            buckets.setdefault(root_partition(root, count), []).append(root)
        for owner, mine in buckets.items():
            part_reverse[owner].append([vertex, mine])

    return [
        {
            "format": state["format"],
            "query": state["query"],
            "window": dict(state["window"]),
            "result_semantics": state.get("result_semantics", "implicit"),
            "current_time": state.get("current_time"),
            "last_expiry_boundary": state.get("last_expiry_boundary"),
            "stats": dict(state["stats"]) if index == 0 else _zeroed(state["stats"]),
            "snapshot": state["snapshot"],
            "trees": part_trees[index],
            "reverse_index": part_reverse[index],
            "in_adjacency": state["in_adjacency"],
            "results": part_events[index],
            "emission": {"seq": emission["seq"], "keys": part_keys[index]},
            "partition": {"index": index, "count": count},
        }
        for index in range(count)
    ]
