"""Batch (static-snapshot) RPQ evaluation.

These algorithms evaluate an RPQ over a *fixed* snapshot graph, as the
pre-streaming literature does (§3 and §4 "Batch Algorithm" paragraphs).
They serve two purposes in this repository:

* **correctness oracles** — the property-based tests compare the streaming
  evaluators' answers against these implementations on the final window
  content;
* **the recomputation baseline** — the Virtuoso-emulation baseline of §5.6
  re-runs the batch arbitrary-path algorithm on the window after every
  tuple (see :mod:`repro.core.baseline`).

Only paths with at least one edge are reported, matching the streaming
algorithms, which produce results exclusively through edge insertions.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, List, Set, Tuple

from ..graph.snapshot import SnapshotGraph
from ..graph.tuples import Vertex
from ..regex.dfa import DFA

__all__ = ["batch_rapq", "batch_rspq", "product_graph_edges"]


def product_graph_edges(
    snapshot: SnapshotGraph, dfa: DFA
) -> List[Tuple[Tuple[Vertex, int], Tuple[Vertex, int]]]:
    """Materialize the edges of the product graph ``P_{G,A}`` (Definition 11).

    Returns pairs of product nodes ``((u, s), (v, t))`` such that the window
    contains an edge ``(u, v)`` with label ``l`` and ``delta(s, l) = t``.
    Useful for debugging and for tests that reason about the product graph
    directly.
    """
    edges: List[Tuple[Tuple[Vertex, int], Tuple[Vertex, int]]] = []
    for edge in snapshot.edges():
        for source_state, target_state in dfa.transitions_on(edge.label):
            edges.append(((edge.source, source_state), (edge.target, target_state)))
    return edges


def batch_rapq(snapshot: SnapshotGraph, dfa: DFA) -> Set[Tuple[Vertex, Vertex]]:
    """Evaluate an RPQ under arbitrary path semantics on a static snapshot.

    For every vertex ``x``, traverse the product graph from ``(x, s0)`` by a
    BFS guided by the automaton; report ``(x, u)`` whenever a node ``(u, f)``
    with ``f`` final is reached through at least one edge.  Complexity is
    ``O(n * m * k^2)`` as stated in the paper.
    """
    answers: Set[Tuple[Vertex, Vertex]] = set()
    start_state = dfa.start
    for x in snapshot.vertices():
        seed = (x, start_state)
        visited: Set[Tuple[Vertex, int]] = {seed}
        queue = deque([seed])
        while queue:
            vertex, state = queue.popleft()
            for edge in snapshot.out_edges(vertex):
                target_state = dfa.delta(state, edge.label)
                if target_state is None:
                    continue
                product_node = (edge.target, target_state)
                if target_state in dfa.finals:
                    answers.add((x, edge.target))
                if product_node not in visited:
                    visited.add(product_node)
                    queue.append(product_node)
    return answers


def batch_rspq(
    snapshot: SnapshotGraph,
    dfa: DFA,
    max_paths: int = 1_000_000,
) -> Set[Tuple[Vertex, Vertex]]:
    """Evaluate an RPQ under **simple path** semantics on a static snapshot.

    This is the exact (exhaustive) reference implementation: it enumerates
    simple paths with a DFS that tracks the set of visited vertices, pruning
    a branch only when the current vertex is already on the path.  It is
    exponential in the worst case — RSPQ evaluation is NP-hard in general —
    and is intended for correctness oracles on small windows and for the
    conflict-free cases the paper targets.

    Args:
        snapshot: the window content.
        dfa: minimal automaton of the query.
        max_paths: safety valve on the number of DFS expansions; exceeding it
            raises :class:`RuntimeError` rather than hanging the test suite.

    Returns:
        the set of vertex pairs connected by a simple path whose label is in
        the query language (paths of length >= 1).
    """
    answers: Set[Tuple[Vertex, Vertex]] = set()
    expansions = 0
    for x in snapshot.vertices():
        # Each stack frame is (vertex, state, frozenset of vertices on the path).
        stack: List[Tuple[Vertex, int, FrozenSet[Vertex]]] = [(x, dfa.start, frozenset({x}))]
        seen_frames: Set[Tuple[Vertex, int, FrozenSet[Vertex]]] = set(stack)
        while stack:
            vertex, state, on_path = stack.pop()
            for edge in snapshot.out_edges(vertex):
                expansions += 1
                if expansions > max_paths:
                    raise RuntimeError(
                        "batch_rspq exceeded its expansion budget "
                        f"({max_paths}); the instance is too cyclic for the exact oracle"
                    )
                target_state = dfa.delta(state, edge.label)
                if target_state is None:
                    continue
                if edge.target in on_path:
                    # Re-visiting a vertex would make the path non-simple.
                    continue
                if target_state in dfa.finals:
                    answers.add((x, edge.target))
                frame = (edge.target, target_state, on_path | {edge.target})
                if frame not in seen_frames:
                    seen_frames.add(frame)
                    stack.append(frame)
    return answers
