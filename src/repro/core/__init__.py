"""Core streaming RPQ algorithms: the paper's primary contribution.

* :class:`~repro.core.rapq.RAPQEvaluator` — arbitrary path semantics (§3);
* :class:`~repro.core.rspq.RSPQEvaluator` — simple path semantics (§4);
* :class:`~repro.core.baseline.SnapshotRecomputeBaseline` — per-tuple
  recomputation baseline (§5.6);
* :class:`~repro.core.engine.StreamingRPQEngine` — multi-query front end;
* :mod:`~repro.core.partition` — root partitioning of one RAPQ evaluator
  (intra-query data parallelism for the runtime's whale splitting).
"""

from .baseline import SnapshotRecomputeBaseline
from .batch import batch_rapq, batch_rspq, product_graph_edges
from .checkpoint import (
    checkpoint_rapq,
    decode_rapq,
    encode_rapq,
    load_checkpoint,
    restore_rapq,
    save_checkpoint,
)
from .engine import RegisteredQuery, StreamingRPQEngine, make_evaluator
from .partition import RootPartition, partition_checkpoint, root_partition, vertex_sort_key
from .rapq import RAPQEvaluator
from .results import ResultEvent, ResultStream
from .rspq import RSPQEvaluator
from .rspq_tree import RSPQNode, RSPQTree
from .tree_index import SpanningTree, TreeIndex, TreeNode

__all__ = [
    "RAPQEvaluator",
    "RSPQEvaluator",
    "RSPQNode",
    "RSPQTree",
    "RegisteredQuery",
    "ResultEvent",
    "ResultStream",
    "RootPartition",
    "SnapshotRecomputeBaseline",
    "SpanningTree",
    "StreamingRPQEngine",
    "TreeIndex",
    "TreeNode",
    "batch_rapq",
    "batch_rspq",
    "checkpoint_rapq",
    "decode_rapq",
    "encode_rapq",
    "load_checkpoint",
    "make_evaluator",
    "partition_checkpoint",
    "product_graph_edges",
    "restore_rapq",
    "root_partition",
    "save_checkpoint",
    "vertex_sort_key",
]
