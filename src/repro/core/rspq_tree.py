"""Spanning trees with markings for simple-path (RSPQ) evaluation (§4).

Unlike the arbitrary-path tree index, a (vertex, state) pair may appear
*several times* in an RSPQ spanning tree: once a conflict is discovered the
pair is removed from the set of markings ``M_x`` and later traversals may
materialize additional occurrences on other branches.  Nodes are therefore
represented as explicit instance objects, and the tree keeps an index from
each (vertex, state) key to its live instances.

The set of markings ``M_x`` contains keys that are known to have no
conflict-predecessor descendant; traversals reaching a marked key are
pruned (suffix-language containment guarantees no answer is lost).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph.tuples import Vertex

__all__ = ["RSPQNode", "RSPQTree", "ROOT_TIMESTAMP"]

NodeKey = Tuple[Vertex, int]
ROOT_TIMESTAMP = math.inf


class RSPQNode:
    """One occurrence of a (vertex, state) pair in an RSPQ spanning tree."""

    __slots__ = ("vertex", "state", "parent", "timestamp", "children", "detached")

    def __init__(
        self,
        vertex: Vertex,
        state: int,
        parent: Optional["RSPQNode"],
        timestamp: float,
    ) -> None:
        self.vertex = vertex
        self.state = state
        self.parent = parent
        self.timestamp = timestamp
        # children keyed by (vertex, state): at most one child per key under a
        # given parent, which prevents duplicate subtrees when a conflict makes
        # the same key re-traversable.
        self.children: Dict[NodeKey, "RSPQNode"] = {}
        self.detached = False

    @property
    def key(self) -> NodeKey:
        """The ``(vertex, state)`` pair this node is an occurrence of."""
        return (self.vertex, self.state)

    def path_from_root(self) -> List["RSPQNode"]:
        """Return the node instances on the path root → this node."""
        path: List[RSPQNode] = []
        node: Optional[RSPQNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def states_at_vertex(self, vertex: Vertex) -> List[int]:
        """States in which ``vertex`` occurs on the path root → this node (root first)."""
        states = [node.state for node in self.path_from_root() if node.vertex == vertex]
        return states

    def first_state_at_vertex(self, vertex: Vertex) -> Optional[int]:
        """State of the *first* occurrence of ``vertex`` on the path, or ``None``."""
        for node in self.path_from_root():
            if node.vertex == vertex:
                return node.state
        return None

    def __str__(self) -> str:
        return f"({self.vertex},{self.state})@{self.timestamp}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RSPQNode{self.__str__()}"


class RSPQTree:
    """An RSPQ spanning tree ``T_x`` together with its markings ``M_x``."""

    def __init__(self, root_vertex: Vertex, start_state: int) -> None:
        self.root_vertex = root_vertex
        self.start_state = start_state
        self.root = RSPQNode(root_vertex, start_state, parent=None, timestamp=ROOT_TIMESTAMP)
        self._instances: Dict[NodeKey, List[RSPQNode]] = {self.root.key: [self.root]}
        self._vertex_degree: Dict[Vertex, int] = {root_vertex: 1}
        self.markings: Set[NodeKey] = set()
        self._size = 1

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def instances_of(self, key: NodeKey) -> List[RSPQNode]:
        """Return the live instances of ``key`` (possibly empty)."""
        return list(self._instances.get(key, ()))

    def has_key(self, key: NodeKey) -> bool:
        """Return ``True`` if some live instance of ``key`` exists in the tree."""
        return bool(self._instances.get(key))

    def is_marked(self, key: NodeKey) -> bool:
        """Return ``True`` if ``key`` is in the set of markings ``M_x``."""
        return key in self.markings

    def contains_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` occurs in the tree in some state."""
        return self._vertex_degree.get(vertex, 0) > 0

    def nodes(self) -> Iterator[RSPQNode]:
        """Iterate over all live node instances (including the root)."""
        for instances in list(self._instances.values()):
            for node in list(instances):
                yield node

    def node_count(self) -> int:
        """Total number of live instances (tree size)."""
        return self._size

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_child(self, parent: RSPQNode, key: NodeKey, timestamp: float) -> RSPQNode:
        """Attach a new instance of ``key`` under ``parent``.

        The caller must have checked that ``parent`` has no child with this
        key yet; this method enforces it defensively.
        """
        if parent.detached:
            raise ValueError(f"cannot attach {key} under a detached node {parent}")
        if key in parent.children:
            raise ValueError(f"parent {parent} already has a child with key {key}")
        vertex, state = key
        node = RSPQNode(vertex, state, parent=parent, timestamp=timestamp)
        parent.children[key] = node
        self._instances.setdefault(key, []).append(node)
        self._vertex_degree[vertex] = self._vertex_degree.get(vertex, 0) + 1
        self._size += 1
        return node

    def mark(self, key: NodeKey) -> None:
        """Add ``key`` to the markings ``M_x``."""
        self.markings.add(key)

    def unmark(self, key: NodeKey) -> bool:
        """Remove ``key`` from ``M_x``; return ``True`` if it was marked."""
        if key in self.markings:
            self.markings.discard(key)
            return True
        return False

    def detach_subtree(self, node: RSPQNode) -> List[RSPQNode]:
        """Remove ``node`` and its whole subtree from the tree.

        Returns the removed instances.  The root cannot be detached.
        """
        if node.parent is None:
            raise ValueError("cannot detach the root of an RSPQ tree")
        removed: List[RSPQNode] = []
        node.parent.children.pop(node.key, None)
        stack = [node]
        while stack:
            current = stack.pop()
            if current.detached:
                continue
            current.detached = True
            removed.append(current)
            stack.extend(current.children.values())
            current.children = {}
            instances = self._instances.get(current.key)
            if instances is not None:
                try:
                    instances.remove(current)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not instances:
                    del self._instances[current.key]
            degree = self._vertex_degree.get(current.vertex, 0) - 1
            if degree <= 0:
                self._vertex_degree.pop(current.vertex, None)
            else:
                self._vertex_degree[current.vertex] = degree
            self._size -= 1
        return removed

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def size_summary(self) -> Dict[str, int]:
        """Return node and marking counts for reporting."""
        return {"nodes": self._size, "markings": len(self.markings)}

    def __str__(self) -> str:
        return (f"RSPQTree(root={self.root_vertex}, nodes={self._size}, " f"markings={len(self.markings)})")
