"""Result streams for persistent RPQ evaluation.

Under the implicit window model (§2) the answer of a streaming RPQ is an
*append-only stream* of vertex pairs ``(x, y)``: a pair is appended when a
satisfying path whose edges are all inside the current window is first
discovered.  Results are never retracted by window movement; explicit
deletions (negative tuples) may *invalidate* previously reported results,
which the engines surface as invalidation records.

:class:`ResultStream` records both kinds of events with the timestamp at
which they were produced, and keeps the set of currently-known distinct
pairs for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..graph.tuples import Vertex

__all__ = ["ResultEvent", "ResultStream"]


@dataclass(frozen=True)
class ResultEvent:
    """A single event of the output stream.

    Attributes:
        timestamp: stream time at which the event was produced.
        source: the path's source vertex ``x`` (root of the spanning tree).
        target: the path's target vertex ``y``.
        positive: ``True`` for a newly reported pair, ``False`` for an
            invalidation caused by an explicit deletion.
    """

    timestamp: int
    source: Vertex
    target: Vertex
    positive: bool = True

    @property
    def pair(self) -> Tuple[Vertex, Vertex]:
        """The reported vertex pair ``(x, y)``."""
        return (self.source, self.target)

    def to_wire(self) -> Tuple:
        """Compact wire form ``(tau, x, y, positive)`` (plain scalars only).

        Used by the runtime's worker protocol to ship result events across
        thread/process boundaries without pickling rich objects.
        """
        return (self.timestamp, self.source, self.target, self.positive)

    @classmethod
    def from_wire(cls, wire: Tuple) -> "ResultEvent":
        """Rebuild an event from its :meth:`to_wire` form."""
        timestamp, source, target, positive = wire
        return cls(timestamp=timestamp, source=source, target=target, positive=positive)

    def __str__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"{sign}({self.source}, {self.target})@{self.timestamp}"


class ResultStream:
    """Append-only stream of results produced by a persistent RPQ.

    The stream records every event in order.  ``distinct_pairs`` is the set
    of pairs reported so far and never shrinks (implicit window semantics);
    ``active_pairs`` additionally honours invalidations from explicit
    deletions, i.e. it reflects the pairs supported by the current window
    content.
    """

    def __init__(self) -> None:
        self._events: List[ResultEvent] = []
        self._distinct: Set[Tuple[Vertex, Vertex]] = set()
        self._active_counts: Dict[Tuple[Vertex, Vertex], int] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def report(self, source: Vertex, target: Vertex, timestamp: int) -> ResultEvent:
        """Append a newly discovered pair to the stream."""
        event = ResultEvent(timestamp=timestamp, source=source, target=target, positive=True)
        self._events.append(event)
        self._distinct.add(event.pair)
        self._active_counts[event.pair] = self._active_counts.get(event.pair, 0) + 1
        return event

    def invalidate(self, source: Vertex, target: Vertex, timestamp: int) -> ResultEvent:
        """Record that a previously reported pair lost its last supporting path."""
        event = ResultEvent(timestamp=timestamp, source=source, target=target, positive=False)
        self._events.append(event)
        pair = event.pair
        count = self._active_counts.get(pair, 0)
        if count > 1:
            self._active_counts[pair] = count - 1
        else:
            self._active_counts.pop(pair, None)
        return event

    def copy(self) -> "ResultStream":
        """Cheap structural copy (no per-event replay) for snapshotting."""
        duplicate = ResultStream()
        duplicate._events = list(self._events)
        duplicate._distinct = set(self._distinct)
        duplicate._active_counts = dict(self._active_counts)
        return duplicate

    def extend(self, events: Iterator[ResultEvent]) -> None:
        """Append pre-built events (used when merging engine outputs)."""
        for event in events:
            if event.positive:
                self.report(event.source, event.target, event.timestamp)
            else:
                self.invalidate(event.source, event.target, event.timestamp)

    def to_wire(self) -> Tuple:
        """The whole stream as a tuple of :meth:`ResultEvent.to_wire` forms."""
        return tuple(event.to_wire() for event in self._events)

    @classmethod
    def from_wire(cls, wire) -> "ResultStream":
        """Rebuild a stream by replaying :meth:`to_wire` output.

        Replaying through :meth:`report` / :meth:`invalidate` reconstructs
        the distinct/active pair bookkeeping exactly, so the copy behaves
        like the original stream for every inspection method.
        """
        stream = cls()
        for timestamp, source, target, positive in wire:
            if positive:
                stream.report(source, target, timestamp)
            else:
                stream.invalidate(source, target, timestamp)
        return stream

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> List[ResultEvent]:
        """All events in production order."""
        return list(self._events)

    @property
    def distinct_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """All pairs ever reported (implicit window semantics, monotone)."""
        return set(self._distinct)

    @property
    def active_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """Pairs reported and not subsequently invalidated."""
        return set(self._active_counts.keys())

    def positives(self) -> List[ResultEvent]:
        """Return only the positive (newly-reported) events."""
        return [event for event in self._events if event.positive]

    def negatives(self) -> List[ResultEvent]:
        """Return only the invalidation events."""
        return [event for event in self._events if not event.positive]

    def pairs_reported_at(self, timestamp: int) -> Set[Tuple[Vertex, Vertex]]:
        """Return the pairs first reported exactly at ``timestamp``."""
        return {event.pair for event in self._events if event.positive and event.timestamp == timestamp}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ResultEvent]:
        return iter(self._events)

    def __contains__(self, pair: Tuple[Vertex, Vertex]) -> bool:
        return pair in self._distinct

    def __str__(self) -> str:
        return (
            f"ResultStream(events={len(self._events)}, "
            f"distinct={len(self._distinct)}, active={len(self._active_counts)})"
        )
