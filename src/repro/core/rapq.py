"""Algorithm RAPQ: streaming RPQ evaluation under arbitrary path semantics (§3).

The evaluator maintains, for a registered query ``Q_R`` with minimal DFA
``A`` and a sliding window ``W`` over a streaming graph ``S``:

* the window snapshot ``G_{W,tau}`` (a :class:`~repro.graph.snapshot.SnapshotGraph`);
* the Delta tree index (:class:`~repro.core.tree_index.TreeIndex`): one
  spanning tree of the product graph per source vertex.

Per incoming insertion tuple ``(tau, (u, v), l, +)`` it emulates a traversal
of the product graph (Algorithm **RAPQ** + **Insert** of the paper),
appending newly satisfied vertex pairs to the result stream.  At slide
boundaries **ExpiryRAPQ** prunes nodes whose path timestamp left the window
and reconnects the ones that still have a valid alternative path.  Explicit
deletions (negative tuples) are handled by **Delete**, which marks the
affected subtrees as expired and reuses the expiry machinery — the uniform
treatment the paper emphasizes.

The implementation is iterative (explicit work stacks) rather than
recursive so that long paths in large windows cannot hit Python's recursion
limit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph.snapshot import SnapshotGraph
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze
from .partition import RootPartition
from .results import ResultStream
from .tree_index import NodeKey, SpanningTree, TreeIndex

__all__ = ["RAPQEvaluator"]


@dataclass
class _PendingInsert:
    """A deferred call to Algorithm Insert (parent, child, connecting edge)."""

    parent: NodeKey
    child: NodeKey
    edge_timestamp: int


class RAPQEvaluator:
    """Incremental evaluator for a single RPQ under arbitrary path semantics.

    Args:
        query: the RPQ, as a string in the surface syntax, a parsed AST, or a
            pre-computed :class:`~repro.regex.analysis.QueryAnalysis`.
        window: the sliding-window specification ``(|W|, beta)``.

    The evaluator is *eager* in evaluation (every tuple is processed on
    arrival) and *lazy* in expiration (expiry runs when a slide boundary is
    crossed), exactly as in §2 of the paper.

    An evaluator may be one *root partition* of a logically single query
    (intra-query data parallelism): with ``partition=(i, k)`` it maintains
    the full window snapshot but materializes only the spanning trees
    whose root :meth:`~repro.core.partition.RootPartition.admits` — fed
    the same relevant-tuple sequence, ``k`` such evaluators together
    produce exactly the unpartitioned evaluator's result stream (see
    :mod:`repro.core.partition` for the merge contract).
    """

    def __init__(
        self,
        query,
        window: WindowSpec,
        use_reverse_index: bool = True,
        result_semantics: str = "implicit",
        snapshot: Optional[SnapshotGraph] = None,
        manage_snapshot: bool = True,
        partition: Optional[RootPartition] = None,
    ) -> None:
        if isinstance(query, QueryAnalysis):
            self.analysis = query
        else:
            self.analysis = analyze(query)
        if result_semantics not in {"implicit", "explicit"}:
            raise ValueError(f"result_semantics must be 'implicit' or 'explicit', got {result_semantics!r}")
        self.dfa = self.analysis.dfa
        self.window = window
        # The vertex -> trees reverse index lets a tuple visit only the trees
        # that can actually extend with it.  Disabling it (ablation study)
        # falls back to scanning every spanning tree per tuple, which is what
        # a naive reading of Algorithm RAPQ's "foreach T_x in Delta" does.
        self.use_reverse_index = use_reverse_index
        # Implicit windows (the paper's default) keep reported results forever;
        # explicit windows additionally emit invalidations when the supporting
        # paths expire from the window (§2, "explicit windows").
        self.result_semantics = result_semantics
        # A snapshot may be shared across evaluators (multi-query processing);
        # in that case the owner inserts/deletes/expires window content and
        # this evaluator only reads it.
        self.snapshot = snapshot if snapshot is not None else SnapshotGraph()
        self.manage_snapshot = manage_snapshot
        # Root partitioning (intra-query data parallelism): when set, only
        # trees whose root this partition admits are ever materialized.
        # Restricted to implicit windows — explicit expiry invalidations
        # are driven by window movement, which partitions hosted on
        # different shards do not observe identically.
        self.partition = RootPartition.coerce(partition)
        if self.partition is not None and self.result_semantics != "implicit":
            raise ValueError(
                "root-partitioned evaluators require 'implicit' result semantics, "
                f"got {self.result_semantics!r}"
            )
        self.index = TreeIndex(start_state=self.dfa.start)
        self.results = ResultStream()
        # Emission keys: each result event is tagged with the index of the
        # relevant tuple that produced it.  The counter is a pure function
        # of the relevant-tuple sequence (identical across root
        # partitions), so merging partition streams by (key, root) is
        # exact; see repro.core.partition.
        self._emission_seq = 0
        self._emission_keys: List[int] = []
        self._current_time: Optional[int] = None
        self._last_expiry_boundary: Optional[int] = None
        # Counters used by the experiment harness.
        self.stats: Dict[str, float] = {
            "tuples_processed": 0,
            "tuples_discarded": 0,
            "insert_calls": 0,
            "expiry_runs": 0,
            "nodes_expired": 0,
            "deletions_processed": 0,
            "expiry_seconds": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def current_time(self) -> Optional[int]:
        """Timestamp of the most recently processed tuple."""
        return self._current_time

    def relevant(self, tup: StreamingGraphTuple) -> bool:
        """Return ``True`` if the tuple's label belongs to the query alphabet.

        Tuples with irrelevant labels cannot contribute to any result path
        and are discarded before processing (§5.2).
        """
        return tup.label in self.analysis.alphabet

    def process(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        """Process one streaming graph tuple; return the newly reported pairs.

        Expired tuples are removed lazily: before the tuple is applied, any
        slide boundary crossed since the previous tuple triggers window
        maintenance (snapshot and tree expiry).
        """
        self._advance_time(tup.timestamp)
        if not self.relevant(tup):
            self.stats["tuples_discarded"] += 1
            return []
        # The emission counter advances only for relevant tuples: relevance
        # is a pure label test, so every root partition of this query
        # counts the same sequence even when co-resident queries make the
        # hosting shards see different irrelevant traffic.
        self._emission_seq += 1
        self.stats["tuples_processed"] += 1
        if tup.is_delete:
            self._process_delete(tup)
            return []
        return self._process_insert(tup)

    def observe(self, timestamp: int) -> None:
        """Account for an irrelevant tuple without dispatching it.

        Exactly what :meth:`process` does for a tuple outside the query
        alphabet — advance the clock (running window maintenance at slide
        boundaries) and count the discard — without the label test.  The
        engine's label-routing map uses this so irrelevant tuples skip the
        per-query dispatch entirely.
        """
        self._advance_time(timestamp)
        self.stats["tuples_discarded"] += 1

    def process_stream(self, tuples: Iterable[StreamingGraphTuple]) -> ResultStream:
        """Process an entire stream and return the accumulated result stream."""
        for tup in tuples:
            self.process(tup)
        return self.results

    def answer_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """All distinct pairs reported so far (monotone, implicit windows)."""
        return self.results.distinct_pairs

    def active_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """Pairs reported and not invalidated by explicit deletions."""
        return self.results.active_pairs

    @property
    def emission_seq(self) -> int:
        """Number of relevant tuples processed (the emission-key counter)."""
        return self._emission_seq

    @property
    def emission_keys(self) -> Tuple[int, ...]:
        """Per-event emission keys, parallel to ``results.events``.

        Key ``i`` is the value of :attr:`emission_seq` when event ``i``
        was produced.  Together with the event's ``source`` (its tree
        root) this is the merge key that reassembles root-partitioned
        result streams into the exact unpartitioned stream
        (:func:`repro.runtime.merger.merge_partition_events`).
        """
        return tuple(self._emission_keys)

    def _report(self, source: Vertex, target: Vertex, timestamp: int) -> None:
        """Append a positive result, tagged with the current emission key."""
        self.results.report(source, target, timestamp)
        self._emission_keys.append(self._emission_seq)

    def _invalidate(self, source: Vertex, target: Vertex, timestamp: int) -> None:
        """Append an invalidation, tagged with the current emission key."""
        self.results.invalidate(source, target, timestamp)
        self._emission_keys.append(self._emission_seq)

    def index_size(self) -> Dict[str, int]:
        """Current size of the Delta index (Figure 5 reports this)."""
        return self.index.size_summary()

    def expire_now(self) -> int:
        """Force window maintenance at the current time; return #expired nodes.

        The engine calls this at slide boundaries, but tests and the
        experiment harness may call it directly.
        """
        if self._current_time is None:
            return 0
        return self._expire(self._current_time)

    # ------------------------------------------------------------------ #
    # Time and window maintenance
    # ------------------------------------------------------------------ #

    def _advance_time(self, timestamp: int) -> None:
        if self._current_time is not None and timestamp < self._current_time:
            raise ValueError(f"timestamps must be non-decreasing: got {timestamp} after {self._current_time}")
        self._current_time = timestamp
        boundary = self.window.window_end(timestamp)
        if self._last_expiry_boundary is None:
            self._last_expiry_boundary = boundary
            return
        if boundary > self._last_expiry_boundary:
            self._last_expiry_boundary = boundary
            self._expire(boundary)

    def _watermark(self, now: int) -> float:
        return now - self.window.size

    def _expire(self, now: int) -> int:
        """Run ExpiryRAPQ on the snapshot and every spanning tree."""
        started = time.perf_counter()
        watermark = self._watermark(now)
        if self.manage_snapshot:
            self.snapshot.expire(watermark)
        expired_total = 0
        self.stats["expiry_runs"] += 1
        record_invalidations = self.result_semantics == "explicit"
        for tree in self.index.trees():
            expired_total += self._expire_tree(tree, watermark, record_invalidations=record_invalidations)
            if len(tree) <= 1:
                self.index.discard_tree(tree.root_vertex)
        self.stats["nodes_expired"] += expired_total
        self.stats["expiry_seconds"] += time.perf_counter() - started
        return expired_total

    # ------------------------------------------------------------------ #
    # Algorithm RAPQ (insertion tuples)
    # ------------------------------------------------------------------ #

    def _process_insert(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        now = tup.timestamp
        watermark = self._watermark(now)
        if self.manage_snapshot:
            self.snapshot.insert_tuple(tup)
        transitions = self.dfa.transitions_on(tup.label)
        if not transitions:
            return []
        newly_reported: List[Tuple[Vertex, Vertex]] = []

        # A new spanning tree rooted at u is materialized when the edge can
        # start a path from u, i.e. when delta(s0, l) is defined.  This is
        # the single point where root partitioning bites: a partitioned
        # evaluator only materializes the trees it owns, and since trees
        # never interact, everything downstream is untouched.
        if any(source_state == self.dfa.start for source_state, _ in transitions) and (
            self.partition is None or self.partition.admits(tup.source)
        ):
            self.index.get_or_create(tup.source)

        if self.use_reverse_index:
            candidate_trees = self.index.trees_containing(tup.source)
        else:
            candidate_trees = list(self.index.trees())
        for tree in candidate_trees:
            for source_state, target_state in transitions:
                parent_key: NodeKey = (tup.source, source_state)
                parent = tree.get(parent_key)
                if parent is None or parent.timestamp <= watermark:
                    continue
                child_key: NodeKey = (tup.target, target_state)
                newly_reported.extend(self._maybe_report_root_cycle(tree, child_key, now))
                child = tree.get(child_key)
                candidate_ts = min(parent.timestamp, tup.timestamp)
                if child is None or child.timestamp < candidate_ts:
                    newly_reported.extend(
                        self._insert(tree, parent_key, child_key, tup.timestamp, now, watermark)
                    )
        return newly_reported

    def _maybe_report_root_cycle(
        self, tree: SpanningTree, child_key: NodeKey, now: int
    ) -> List[Tuple[Vertex, Vertex]]:
        """Report ``(x, x)`` when a valid cycle returns to the root in an accepting start state.

        The root node ``(x, s0)`` is present in its tree from creation, so
        Algorithm Insert never re-adds it and would silently miss the answer
        ``(x, x)`` for queries whose start state is accepting (e.g. ``(a|b)*``)
        when the window contains a cycle through ``x``.  This corner case is
        handled here; see DESIGN.md ("Design choices").
        """
        if child_key != tree.root_key:
            return []
        if self.dfa.start not in self.dfa.finals:
            return []
        if getattr(tree, "root_cycle_reported", False):
            return []
        tree.root_cycle_reported = True
        self._report(tree.root_vertex, tree.root_vertex, now)
        return [(tree.root_vertex, tree.root_vertex)]

    def _insert(
        self,
        tree: SpanningTree,
        parent_key: NodeKey,
        child_key: NodeKey,
        edge_timestamp: int,
        now: int,
        watermark: float,
        report: bool = True,
    ) -> List[Tuple[Vertex, Vertex]]:
        """Iterative version of Algorithm Insert.

        Returns the vertex pairs newly added to the result set, and appends
        them to the result stream.  ``report`` is False when Insert is used
        to *reconnect* nodes during expiry or deletion handling: reconnection
        can only re-derive pairs that were already reported (the tree held
        every reachable node before pruning), so re-reporting them would
        unbalance the result stream's active-pair accounting.
        """
        reported: List[Tuple[Vertex, Vertex]] = []
        stack: List[_PendingInsert] = [
            _PendingInsert(parent=parent_key, child=child_key, edge_timestamp=edge_timestamp)
        ]
        while stack:
            pending = stack.pop()
            parent = tree.get(pending.parent)
            if parent is None or parent.timestamp <= watermark:
                continue
            new_timestamp = min(parent.timestamp, pending.edge_timestamp)
            if new_timestamp <= watermark:
                continue
            child = tree.get(pending.child)
            self.stats["insert_calls"] += 1
            if child is not None:
                # A fresher path to an existing node: refresh its parent pointer
                # and timestamp.  The strict timestamp improvement rules out
                # cycles (if the parent were a descendant of the child its path
                # timestamp could not exceed the child's).  The fresher
                # timestamp may unblock extensions that were previously outside
                # the window, so the node's outgoing edges are re-explored
                # below — without this propagation step results can be missed
                # when a stale node is revived by a newer path.
                if child.timestamp >= new_timestamp:
                    continue
                tree.reparent(pending.child, pending.parent, new_timestamp)
            else:
                node = tree.add_node(pending.child, pending.parent, new_timestamp)
                self.index.register_node(tree, node.vertex)
                child_vertex, child_state = pending.child
                if report and child_state in self.dfa.finals:
                    self._report(tree.root_vertex, child_vertex, now)
                    reported.append((tree.root_vertex, child_vertex))
            child_vertex, child_state = pending.child
            # Extend the traversal with window edges leaving the (new or
            # refreshed) node.
            for edge in self.snapshot.out_edges(child_vertex):
                if edge.timestamp <= watermark:
                    continue
                next_state = self.dfa.delta(child_state, edge.label)
                if next_state is None:
                    continue
                next_key: NodeKey = (edge.target, next_state)
                if report:
                    reported.extend(self._maybe_report_root_cycle(tree, next_key, now))
                existing = tree.get(next_key)
                candidate_ts = min(new_timestamp, edge.timestamp)
                if existing is None or existing.timestamp < candidate_ts:
                    stack.append(
                        _PendingInsert(parent=pending.child, child=next_key, edge_timestamp=edge.timestamp)
                    )
        return reported

    # ------------------------------------------------------------------ #
    # Algorithm ExpiryRAPQ (window maintenance)
    # ------------------------------------------------------------------ #

    def _expire_tree(
        self,
        tree: SpanningTree,
        watermark: float,
        record_invalidations: bool,
    ) -> int:
        """Prune expired nodes from ``tree`` and reconnect the ones still reachable.

        Returns the number of nodes permanently removed.  When
        ``record_invalidations`` is true (explicit deletions), pairs whose
        accepting node is permanently removed are appended to the result
        stream as invalidations.
        """
        expired_keys = [
            node.key
            for node in tree.nodes()
            if node.parent is not None and node.timestamp <= watermark
        ]
        if not expired_keys:
            return 0
        removed_nodes = tree.remove_many(iter(expired_keys))
        for node in removed_nodes:
            self.index.unregister_node(tree, node.vertex)

        now = self._current_time if self._current_time is not None else 0
        # Try to reconnect each pruned node through a still-valid incoming edge
        # from a surviving (or already reconnected) node.
        for key in expired_keys:
            if key in tree:
                continue  # reconnected transitively by an earlier reconnection
            vertex, state = key
            for edge in self.snapshot.in_edges(vertex):
                if edge.timestamp <= watermark:
                    continue
                for source_state, target_state in self.dfa.transitions_on(edge.label):
                    if target_state != state:
                        continue
                    parent_key: NodeKey = (edge.source, source_state)
                    parent = tree.get(parent_key)
                    if parent is None or parent.timestamp <= watermark:
                        continue
                    self._insert(tree, parent_key, key, edge.timestamp, now, watermark, report=False)
                    break
                if key in tree:
                    break

        permanently_removed = 0
        for key in expired_keys:
            if key in tree:
                continue
            permanently_removed += 1
            vertex, state = key
            if record_invalidations and state in self.dfa.finals:
                self._invalidate(tree.root_vertex, vertex, now)
        return permanently_removed

    # ------------------------------------------------------------------ #
    # Algorithm Delete (explicit deletions)
    # ------------------------------------------------------------------ #

    def _process_delete(self, tup: StreamingGraphTuple) -> None:
        """Process a negative tuple with Algorithm Delete."""
        self.stats["deletions_processed"] += 1
        if self.manage_snapshot:
            self.snapshot.delete(tup.source, tup.target, tup.label)
        watermark = self._watermark(tup.timestamp)
        transitions = self.dfa.transitions_on(tup.label)
        if not transitions:
            return
        for tree in self.index.trees_containing(tup.target):
            affected = False
            for source_state, target_state in transitions:
                child_key: NodeKey = (tup.target, target_state)
                child = tree.get(child_key)
                if child is None or child.parent != (tup.source, source_state):
                    continue  # not a tree edge in this tree
                # Mark the whole subtree as expired (timestamp -inf).
                for key in tree.subtree_keys(child_key):
                    node = tree.get(key)
                    if node is not None:
                        node.timestamp = -math.inf
                affected = True
            if affected:
                self._expire_tree(tree, watermark, record_invalidations=True)
                if len(tree) <= 1:
                    self.index.discard_tree(tree.root_vertex)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        return (
            f"RAPQEvaluator(query={self.analysis.expression}, k={self.dfa.num_states}, "
            f"|W|={self.window.size}, beta={self.window.slide}, "
            f"index={self.index.size_summary()})"
        )
