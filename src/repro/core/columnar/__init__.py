"""Columnar batched hot path: vectorized RAPQ evaluation over interned ids.

This package is the performance layer of the core: it evaluates whole
*batches* of streaming graph tuples at once instead of tuple-at-a-time,
over dense integer ids instead of Python strings:

* :mod:`~repro.core.columnar.interning` — the boundary layer mapping
  vertex/label values to dense ``int32`` ids (and back);
* :mod:`~repro.core.columnar.kernels` — the vectorized primitives
  (relevance masking, monotonicity scan, expiry scans), each with a numpy
  implementation and a tuned pure-Python fallback;
* :mod:`~repro.core.columnar.batch` — :class:`ColumnarBatch`, the
  struct-of-arrays batch representation and its packed wire form;
* :mod:`~repro.core.columnar.evaluator` —
  :class:`ColumnarRAPQEvaluator`, a drop-in
  :class:`~repro.core.rapq.RAPQEvaluator` whose internal state is fully
  interned and whose batch entry point runs the vectorized pre-passes.

numpy is an *optional* dependency (the ``fast`` extra): when it is not
installed — or when ``REPRO_FORCE_PURE=1`` is set — every kernel falls
back to pure Python and the evaluator keeps working, bit-for-bit
identically, just slower.  :func:`fastpath_name` reports which
implementation is active; the runtime exports it as the
``repro_fastpath_active`` gauge.
"""

from __future__ import annotations

from .batch import COLUMNAR_MARKER, ColumnarBatch
from .evaluator import ColumnarRAPQEvaluator
from .interning import Interner
from .kernels import fastpath_name, have_numpy, set_implementation

__all__ = [
    "COLUMNAR_MARKER",
    "ColumnarBatch",
    "ColumnarRAPQEvaluator",
    "Interner",
    "fastpath_name",
    "have_numpy",
    "promote_evaluator",
    "set_implementation",
]


def promote_evaluator(evaluator):
    """Upgrade a plain scalar RAPQ evaluator to the columnar fast path.

    Used by the runtime's restore paths (checkpoint restore, live
    migration, process-transport bootstrap), whose decoders produce plain
    :class:`~repro.core.rapq.RAPQEvaluator` objects: promotion re-interns
    the whole evaluator state so the hot path stays columnar after a
    restore.  Evaluators of any other type (already columnar, RSPQ,
    baseline) pass through untouched.
    """
    from ..rapq import RAPQEvaluator

    if type(evaluator) is RAPQEvaluator:
        return ColumnarRAPQEvaluator.from_scalar(evaluator)
    return evaluator
