"""Struct-of-arrays batches of streaming graph tuples, and their wire form.

A :class:`ColumnarBatch` holds one batch of tuples as parallel columns —
timestamps, interned source/target vertex ids, interned label ids and
delete flags — plus the *per-batch* id -> value tables the ids refer to.
Tables are local to the batch (built fresh by :meth:`from_tuples`), so
the wire form is self-contained: no interner state needs to be
coordinated between coordinator and workers, across restarts, or through
migrations.

The packed wire form (:meth:`to_wire` / :meth:`from_wire`) stays within
the worker protocol's "plain scalars, strings and bytes" discipline:
columns travel as the raw bytes of stdlib ``array`` buffers, tables as
tuples of scalars.  On the receiving side the byte columns rebuild into
``array`` objects, which numpy views zero-copy (``np.frombuffer``).

Tracing never touches these bytes: a sampled batch's trace context rides
*beside* the payload as an optional trailing ``BATCH`` frame element, so
the wire form of a batch is bit-identical whether or not it was sampled.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple

from ...graph.tuples import EdgeOp, StreamingGraphTuple

__all__ = ["COLUMNAR_MARKER", "ColumnarBatch"]

#: First element of a columnar ``BATCH`` payload.  Legacy row payloads are
#: tuples of ``(tau, u, v, l, op)`` wire forms whose first element is a
#: tuple, never this string — so one marker test distinguishes the forms
#: and old workers/coordinators interoperate with new ones (a coordinator
#: configured with ``wire_format="rows"`` speaks the legacy form only).
COLUMNAR_MARKER = "COL1"


class ColumnarBatch:
    """One batch of streaming graph tuples in struct-of-arrays layout.

    Attributes:
        timestamps: ``array('q')`` of tuple timestamps, in stream order.
        sources / targets: ``array('i')`` of per-batch vertex ids.
        labels: ``array('i')`` of per-batch label ids.
        deletes: ``array('b')`` of flags (1 = explicit deletion).
        vertex_table: per-batch id -> vertex value table.
        label_table: per-batch id -> label table.
    """

    __slots__ = (
        "timestamps",
        "sources",
        "targets",
        "labels",
        "deletes",
        "vertex_table",
        "label_table",
        "_materialized",
    )

    def __init__(
        self,
        timestamps: array,
        sources: array,
        targets: array,
        labels: array,
        deletes: array,
        vertex_table: Tuple,
        label_table: Tuple,
    ) -> None:
        self.timestamps = timestamps
        self.sources = sources
        self.targets = targets
        self.labels = labels
        self.deletes = deletes
        self.vertex_table = vertex_table
        self.label_table = label_table
        self._materialized: Optional[List[StreamingGraphTuple]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tuples(cls, batch: Sequence[StreamingGraphTuple]) -> "ColumnarBatch":
        """Build columns from tuples, interning vertices/labels batch-locally."""
        vertex_ids: dict = {}
        label_ids: dict = {}
        vertex_id = vertex_ids.setdefault
        label_id = label_ids.setdefault
        sources: List[int] = []
        targets: List[int] = []
        labels: List[int] = []
        append_source = sources.append
        append_target = targets.append
        append_label = labels.append
        for tup in batch:
            append_source(vertex_id(tup.source, len(vertex_ids)))
            append_target(vertex_id(tup.target, len(vertex_ids)))
            append_label(label_id(tup.label, len(label_ids)))
        return cls(
            array("q", [tup.timestamp for tup in batch]),
            array("i", sources),
            array("i", targets),
            array("i", labels),
            array("b", [1 if tup.is_delete else 0 for tup in batch]),
            tuple(vertex_ids),
            tuple(label_ids),
        )

    # ------------------------------------------------------------------ #
    # Wire form
    # ------------------------------------------------------------------ #

    def to_wire(self) -> Tuple:
        """Encode into the packed ``BATCH`` payload (scalars, bytes, tuples)."""
        return (
            COLUMNAR_MARKER,
            len(self.timestamps),
            self.timestamps.tobytes(),
            self.sources.tobytes(),
            self.targets.tobytes(),
            self.labels.tobytes(),
            self.deletes.tobytes(),
            self.vertex_table,
            self.label_table,
        )

    @classmethod
    def from_wire(cls, payload: Tuple) -> "ColumnarBatch":
        """Decode a payload produced by :meth:`to_wire`."""
        marker, _count, ts_bytes, src_bytes, dst_bytes, lbl_bytes, del_bytes = payload[:7]
        if marker != COLUMNAR_MARKER:
            raise ValueError(f"not a columnar batch payload (marker {marker!r})")
        timestamps = array("q")
        timestamps.frombytes(ts_bytes)
        sources = array("i")
        sources.frombytes(src_bytes)
        targets = array("i")
        targets.frombytes(dst_bytes)
        labels = array("i")
        labels.frombytes(lbl_bytes)
        deletes = array("b")
        deletes.frombytes(del_bytes)
        return cls(timestamps, sources, targets, labels, deletes, tuple(payload[7]), tuple(payload[8]))

    @staticmethod
    def is_wire(payload) -> bool:
        """Whether a ``BATCH`` payload is the packed columnar form."""
        return bool(payload) and payload[0] == COLUMNAR_MARKER

    # ------------------------------------------------------------------ #
    # Row access (fallback paths)
    # ------------------------------------------------------------------ #

    def tuples(self) -> List[StreamingGraphTuple]:
        """Materialize the batch as tuples (cached; used by scalar fallbacks)."""
        if self._materialized is None:
            vertex_table = self.vertex_table
            label_table = self.label_table
            self._materialized = [
                StreamingGraphTuple(
                    timestamp=self.timestamps[index],
                    source=vertex_table[self.sources[index]],
                    target=vertex_table[self.targets[index]],
                    label=label_table[self.labels[index]],
                    op=EdgeOp.DELETE if self.deletes[index] else EdgeOp.INSERT,
                )
                for index in range(len(self.timestamps))
            ]
        return self._materialized

    def __len__(self) -> int:
        return len(self.timestamps)

    def __str__(self) -> str:
        return (
            f"ColumnarBatch(n={len(self.timestamps)}, vertices={len(self.vertex_table)}, "
            f"labels={len(self.label_table)})"
        )
