"""The columnar RAPQ evaluator: batched, vectorized, fully interned.

:class:`ColumnarRAPQEvaluator` is a drop-in subclass of
:class:`~repro.core.rapq.RAPQEvaluator` whose internal state is keyed by
dense integer ids instead of vertex/label values:

* vertices and labels are interned at the evaluator boundary
  (:class:`~repro.core.columnar.interning.Interner`); everything the
  outside world observes — result events, returned pairs, checkpoints,
  partition admission — is resolved back to original values there;
* the DFA is compiled incrementally into a dense ``label_id × state``
  transition table (:class:`_TableDFA`), replacing the per-tuple
  ``transitions_on`` list walk with one indexed load;
* the window snapshot gains a FIFO expiry queue
  (:class:`ColumnarSnapshot`) so a slide boundary costs O(expired
  edges) instead of a full adjacency scan;
* each spanning tree carries a minimum-timestamp lower bound so expiry
  skips trees that cannot possibly hold expired nodes, and the per-tree
  scan itself runs through the vectorized kernels.

The batch entry point :meth:`ColumnarRAPQEvaluator.process_batch` adds
the vectorized pre-passes: relevance filtering of a whole
:class:`~repro.core.columnar.batch.ColumnarBatch` via the label table,
and a single monotonicity scan per irrelevant run.  Parity is *by
construction*: the pre-passes only decide **which** per-tuple mutations
run; the mutations themselves execute in stream order (the deterministic
ordered drain), so result streams, emission keys, and checkpoints are
bit-identical to the scalar evaluator's — the parity and differential
tests assert exactly that.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from ...graph.snapshot import LabeledEdge, SnapshotGraph
from ...graph.tuples import StreamingGraphTuple, Vertex
from ...graph.window import WindowSpec
from ..partition import RootPartition, vertex_sort_key
from ..rapq import RAPQEvaluator
from ..tree_index import SpanningTree, TreeIndex
from .batch import ColumnarBatch
from .interning import Interner
from .kernels import (
    boundary_crossings,
    expired_node_keys,
    first_decrease,
    map_labels,
    min_timestamp,
    relevant_indices,
)

__all__ = ["ColumnarRAPQEvaluator", "ColumnarSnapshot"]


class _TableDFA:
    """The query DFA compiled to dense per-label-id transition rows.

    Grown incrementally as labels are interned: label id ``l`` gets the
    sorted transition pairs of :meth:`~repro.regex.dfa.DFA.transitions_on`
    (order is part of the emission-order contract), the dense
    :meth:`~repro.regex.dfa.DFA.dense_row`, and a precomputed
    "can start a tree" flag.  ``start``/``finals`` mirror the base DFA so
    code written against the scalar automaton interface keeps working.
    """

    __slots__ = ("base", "start", "finals", "num_states", "trans_pairs", "delta_rows", "starts")

    def __init__(self, base) -> None:
        self.base = base
        self.start = base.start
        self.finals = base.finals
        self.num_states = base.num_states
        #: label id -> sorted ``(source_state, target_state)`` pairs
        self.trans_pairs: List[Tuple[Tuple[int, int], ...]] = []
        #: label id -> dense ``state -> target`` row (-1 = dead)
        self.delta_rows: List[List[int]] = []
        #: label id -> whether some transition leaves the start state
        self.starts: List[bool] = []

    def add_label(self, label: str) -> None:
        """Append the table rows for the next interned label."""
        pairs = tuple(self.base.transitions_on(label))
        self.trans_pairs.append(pairs)
        self.delta_rows.append(list(self.base.dense_row(label)))
        self.starts.append(any(source == self.start for source, _ in pairs))

    def transitions_on(self, label_id: int) -> Tuple[Tuple[int, int], ...]:
        """Transition pairs of an interned label (scalar-interface shim)."""
        return self.trans_pairs[label_id]

    def delta(self, state: int, label_id: int) -> Optional[int]:
        """``delta(state, l)`` over interned labels (scalar-interface shim)."""
        target = self.delta_rows[label_id][state]
        return None if target < 0 else target


class ColumnarSnapshot(SnapshotGraph):
    """A snapshot graph with a FIFO expiry queue over interned edges.

    Every insert appends ``(timestamp, source, target, label)`` to the
    queue; stream order makes the queue timestamps non-decreasing, so a
    slide boundary pops only the entries at or below the watermark —
    O(expired) instead of the base class's full adjacency scan.  Entries
    are re-checked against the live adjacency before deletion (the edge
    may have been refreshed by a newer occurrence, or explicitly deleted),
    which makes stale queue entries harmless.  The final adjacency state
    equals the base class's: the same edge set is deleted, and dict
    deletion preserves the insertion order of the remaining entries.
    """

    def __init__(self) -> None:
        super().__init__()
        self._expiry_queue: deque = deque()

    def insert(self, source, target, label, timestamp) -> bool:
        self._expiry_queue.append((timestamp, source, target, label))
        return super().insert(source, target, label, timestamp)

    def expire(self, watermark) -> List[LabeledEdge]:
        expired: List[LabeledEdge] = []
        queue = self._expiry_queue
        out = self._out
        while queue and queue[0][0] <= watermark:
            _, source, target, label = queue.popleft()
            live = out.get(source)
            if live is None:
                continue
            actual = live.get((target, label))
            if actual is None or actual > watermark:
                continue
            expired.append(LabeledEdge(source, target, label, actual))
            self.delete(source, target, label)
        return expired

    def rebuild_expiry_queue(self) -> None:
        """Re-seed the queue from the live adjacency (restore/promotion path)."""
        self._expiry_queue = deque(
            sorted(
                (timestamp, source, target, label)
                for source, out_edges in self._out.items()
                for (target, label), timestamp in out_edges.items()
            )
        )


class _ColTree(SpanningTree):
    """A spanning tree carrying a conservative minimum-timestamp bound.

    ``min_timestamp`` is a lower bound on every node's timestamp (the root
    is ``+inf``): while it sits above the watermark the tree cannot hold
    an expired node and the expiry scan skips it entirely.  Insertions
    and reparents lower the bound eagerly; removals leave it conservative
    (possibly too low — an extra scan, never a missed one) until
    :meth:`recompute_min` refreshes it after a scan.
    """

    def __init__(self, root_vertex, start_state: int) -> None:
        super().__init__(root_vertex, start_state)
        self.min_timestamp: float = math.inf

    def add_node(self, key, parent, timestamp):
        node = super().add_node(key, parent, timestamp)
        if timestamp < self.min_timestamp:
            self.min_timestamp = timestamp
        return node

    def reparent(self, key, new_parent, timestamp):
        node = super().reparent(key, new_parent, timestamp)
        if timestamp < self.min_timestamp:
            self.min_timestamp = timestamp
        return node

    def recompute_min(self) -> None:
        """Tighten the bound to the true minimum after a pruning scan."""
        self.min_timestamp = min_timestamp(self._nodes)


class _ColTreeIndex(TreeIndex):
    """A Delta index over interned roots that keeps *canonical* tree order.

    Tree iteration order is the cross-evaluator contract (it shapes
    same-timestamp emission order), and the canonical order is defined
    over original vertex values — so each tree's ``order_key`` is
    computed from the root id *resolved* through the interner table, not
    from the id itself (interning order is an accident of the stream).
    """

    def __init__(self, start_state: int, resolve_table: List) -> None:
        super().__init__(start_state)
        self._resolve_table = resolve_table

    def get_or_create(self, root_vertex) -> _ColTree:
        tree = self._trees.get(root_vertex)
        if tree is None:
            tree = _ColTree(root_vertex, self._start_state)
            tree.order_key = vertex_sort_key(self._resolve_table[root_vertex])
            self._trees[root_vertex] = tree
            self._vertex_to_roots.setdefault(root_vertex, {})[root_vertex] = None
        return tree


class ColumnarRAPQEvaluator(RAPQEvaluator):
    """Algorithm RAPQ over interned ids, with a vectorized batch entry point.

    Behaviourally identical to :class:`~repro.core.rapq.RAPQEvaluator` —
    same results in the same order, same emission keys, same stats, same
    checkpoints — but internally columnar: ids instead of values, table
    lookups instead of dict-of-tuples walks, queue pops instead of full
    scans.  :meth:`process` keeps the scalar tuple-at-a-time interface;
    :meth:`process_batch` evaluates a whole
    :class:`~repro.core.columnar.batch.ColumnarBatch` with vectorized
    pre-passes and a deterministic ordered drain.

    Unlike the scalar evaluator it always owns its snapshot (a shared
    snapshot would have to be interned consistently across evaluators);
    multi-query shared-snapshot setups keep using the scalar class.
    """

    def __init__(
        self,
        query,
        window: WindowSpec,
        use_reverse_index: bool = True,
        result_semantics: str = "implicit",
        snapshot: Optional[SnapshotGraph] = None,
        manage_snapshot: bool = True,
        partition: Optional[RootPartition] = None,
    ) -> None:
        if snapshot is not None or not manage_snapshot:
            raise ValueError(
                "ColumnarRAPQEvaluator owns its snapshot (interned keys); "
                "shared-snapshot setups use the scalar RAPQEvaluator"
            )
        super().__init__(
            query,
            window,
            use_reverse_index=use_reverse_index,
            result_semantics=result_semantics,
            partition=partition,
        )
        self._vertices = Interner()
        self._labels = Interner()
        self._base_dfa = self.dfa
        self.dfa = _TableDFA(self._base_dfa)
        self.snapshot = ColumnarSnapshot()
        self.index = _ColTreeIndex(self._base_dfa.start, self._vertices.table)

    # ------------------------------------------------------------------ #
    # Interning boundary
    # ------------------------------------------------------------------ #

    def _intern_label(self, label) -> int:
        """Intern a label, growing the transition table to cover its id."""
        label_id = self._labels.intern(label)
        dfa = self.dfa
        while len(dfa.trans_pairs) <= label_id:
            dfa.add_label(self._labels.table[len(dfa.trans_pairs)])
        return label_id

    # ------------------------------------------------------------------ #
    # Scalar-compatible tuple interface
    # ------------------------------------------------------------------ #

    def process(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        """Process one tuple; identical contract to the scalar evaluator."""
        self._advance_time(tup.timestamp)
        if tup.label not in self.analysis.alphabet:
            self.stats["tuples_discarded"] += 1
            return []
        self._emission_seq += 1
        self.stats["tuples_processed"] += 1
        source = self._vertices.intern(tup.source)
        target = self._vertices.intern(tup.target)
        label_id = self._intern_label(tup.label)
        if tup.is_delete:
            self._delete_interned(source, target, label_id, tup.timestamp)
            return []
        return self._insert_interned(source, target, label_id, tup.timestamp)

    # ------------------------------------------------------------------ #
    # Batch interface (the columnar hot path)
    # ------------------------------------------------------------------ #

    def process_batch(self, batch: ColumnarBatch) -> List[Tuple[int, Vertex, Vertex]]:
        """Evaluate a whole batch; return ``(batch_index, source, target)`` pairs.

        The vectorized pre-passes — label-table relevance mapping and the
        per-run monotonicity scan — only *select* which per-tuple mutations
        run; relevant tuples are then drained strictly in stream order, so
        every observable (results, emission keys, stats, checkpoints) is
        bit-identical to feeding the same tuples through :meth:`process`.
        """
        timestamps = batch.timestamps
        count = len(timestamps)
        if count == 0:
            return []
        alphabet = self.analysis.alphabet
        label_map = [
            self._intern_label(label) if label in alphabet else -1 for label in batch.label_table
        ]
        mapped = map_labels(batch.labels, label_map)
        indices = relevant_indices(mapped)
        pairs: List[Tuple[int, Vertex, Vertex]] = []
        if not indices:
            self._observe_run(timestamps, 0, count)
            return pairs
        vertex_map: Dict[int, int] = {}
        vertex_table = batch.vertex_table
        intern_vertex = self._vertices.intern
        sources = batch.sources
        targets = batch.targets
        labels = batch.labels
        deletes = batch.deletes
        stats = self.stats
        cursor = 0
        for index in indices:
            if index > cursor:
                self._observe_run(timestamps, cursor, index)
            cursor = index + 1
            now = timestamps[index]
            self._advance_time(now)
            self._emission_seq += 1
            stats["tuples_processed"] += 1
            batch_source = sources[index]
            source = vertex_map.get(batch_source)
            if source is None:
                source = vertex_map[batch_source] = intern_vertex(vertex_table[batch_source])
            batch_target = targets[index]
            target = vertex_map.get(batch_target)
            if target is None:
                target = vertex_map[batch_target] = intern_vertex(vertex_table[batch_target])
            label_id = label_map[labels[index]]
            if deletes[index]:
                self._delete_interned(source, target, label_id, now)
            else:
                for left, right in self._insert_interned(source, target, label_id, now):
                    pairs.append((index, left, right))
        if cursor < count:
            self._observe_run(timestamps, cursor, count)
        return pairs

    def _observe_run(self, timestamps, start: int, stop: int) -> None:
        """Advance time over a run of irrelevant tuples ``[start, stop)``.

        Equivalent to calling :meth:`observe` once per tuple, but with one
        vectorized monotonicity scan and at most one boundary walk: runs
        that do not cross a slide boundary collapse into a single clock
        assignment.  ``_current_time`` is set to the crossing tuple's
        timestamp before each expiry (the scalar evaluator assigns the
        clock before the boundary check, and expiry-time invalidations
        carry that clock), and monotonicity violations surface the exact
        scalar error with the exact scalar partial state.
        """
        stats = self.stats
        offender = first_decrease(timestamps, start, stop, self._current_time)
        if offender is not None:
            # Replay the valid prefix tuple-at-a-time, then let _advance_time
            # raise the scalar monotonicity error on the offending tuple.
            for index in range(start, offender + 1):
                self._advance_time(timestamps[index])
                stats["tuples_discarded"] += 1
            return
        if self._last_expiry_boundary is None:
            # First tuple ever: _advance_time records the boundary without expiring.
            self._advance_time(timestamps[start])
            stats["tuples_discarded"] += 1
            start += 1
            if start == stop:
                return
        last = timestamps[stop - 1]
        stats["tuples_discarded"] += stop - start
        slide = self.window.slide
        if (last // slide) * slide <= self._last_expiry_boundary:
            self._current_time = last
            return
        # Expire only at the tuples that first cross a slide boundary (the
        # positions the scalar _advance_time would expire at); the rest of
        # the run is bulk-skipped.
        for index in boundary_crossings(timestamps, start, stop, slide, self._last_expiry_boundary):
            value = timestamps[index]
            self._current_time = value
            boundary = (value // slide) * slide
            self._last_expiry_boundary = boundary
            self._expire(boundary)
        self._current_time = last

    # ------------------------------------------------------------------ #
    # Algorithm RAPQ over interned ids
    # ------------------------------------------------------------------ #

    def _maybe_root_cycle_interned(self, tree, child_key, now) -> List[Tuple[Vertex, Vertex]]:
        """Interned counterpart of ``_maybe_report_root_cycle`` (resolved output)."""
        if child_key != tree.root_key:
            return []
        dfa = self.dfa
        if dfa.start not in dfa.finals:
            return []
        if getattr(tree, "root_cycle_reported", False):
            return []
        tree.root_cycle_reported = True
        root = self._vertices.table[tree.root_vertex]
        self._report(root, root, now)
        return [(root, root)]

    def _insert_interned(self, source: int, target: int, label_id: int, now) -> List[Tuple[Vertex, Vertex]]:
        """Mirror of the scalar ``_process_insert`` over interned ids."""
        watermark = self._watermark(now)
        self.snapshot.insert(source, target, label_id, now)
        dfa = self.dfa
        transitions = dfa.trans_pairs[label_id]
        if not transitions:
            return []
        newly_reported: List[Tuple[Vertex, Vertex]] = []

        if dfa.starts[label_id] and (
            self.partition is None or self.partition.admits(self._vertices.table[source])
        ):
            self.index.get_or_create(source)

        if self.use_reverse_index:
            candidate_trees = self.index.trees_containing(source)
        else:
            candidate_trees = list(self.index.trees())
        for tree in candidate_trees:
            nodes = tree._nodes
            for source_state, target_state in transitions:
                parent = nodes.get((source, source_state))
                if parent is None or parent.timestamp <= watermark:
                    continue
                child_key = (target, target_state)
                newly_reported.extend(self._maybe_root_cycle_interned(tree, child_key, now))
                child = nodes.get(child_key)
                candidate_ts = parent.timestamp if parent.timestamp < now else now
                if child is None or child.timestamp < candidate_ts:
                    newly_reported.extend(
                        self._insert(tree, (source, source_state), child_key, now, now, watermark)
                    )
        return newly_reported

    def _insert(
        self,
        tree,
        parent_key,
        child_key,
        edge_timestamp,
        now,
        watermark,
        report: bool = True,
    ) -> List[Tuple[Vertex, Vertex]]:
        """Iterative Algorithm Insert over interned ids (resolved reporting).

        Same traversal, same order, same ``insert_calls`` accounting as the
        scalar version; the differences are mechanical — plain-tuple work
        stack, direct adjacency/transition-table access, and resolution of
        reported pairs at the boundary.
        """
        reported: List[Tuple[Vertex, Vertex]] = []
        nodes = tree._nodes
        snap_out = self.snapshot._out
        dfa = self.dfa
        delta_rows = dfa.delta_rows
        finals = dfa.finals
        resolve = self._vertices.table
        index = self.index
        root_key = tree.root_key
        root_cycle_candidate = report and dfa.start in finals
        root_resolved = resolve[tree.root_vertex]
        insert_calls = 0
        stack = [(parent_key, child_key, edge_timestamp)]
        while stack:
            pending_parent, pending_child, pending_edge_ts = stack.pop()
            parent = nodes.get(pending_parent)
            if parent is None or parent.timestamp <= watermark:
                continue
            parent_ts = parent.timestamp
            new_timestamp = parent_ts if parent_ts < pending_edge_ts else pending_edge_ts
            if new_timestamp <= watermark:
                continue
            child = nodes.get(pending_child)
            insert_calls += 1
            if child is not None:
                if child.timestamp >= new_timestamp:
                    continue
                tree.reparent(pending_child, pending_parent, new_timestamp)
            else:
                node = tree.add_node(pending_child, pending_parent, new_timestamp)
                index.register_node(tree, node.vertex)
                child_vertex, child_state = pending_child
                if report and child_state in finals:
                    target_resolved = resolve[child_vertex]
                    self._report(root_resolved, target_resolved, now)
                    reported.append((root_resolved, target_resolved))
            child_vertex, child_state = pending_child
            for (next_vertex, label_id), edge_ts in snap_out.get(child_vertex, {}).items():
                if edge_ts <= watermark:
                    continue
                next_state = delta_rows[label_id][child_state]
                if next_state < 0:
                    continue
                next_key = (next_vertex, next_state)
                if (
                    root_cycle_candidate
                    and next_key == root_key
                    and not getattr(tree, "root_cycle_reported", False)
                ):
                    tree.root_cycle_reported = True
                    self._report(root_resolved, root_resolved, now)
                    reported.append((root_resolved, root_resolved))
                existing = nodes.get(next_key)
                candidate_ts = new_timestamp if new_timestamp < edge_ts else edge_ts
                if existing is None or existing.timestamp < candidate_ts:
                    stack.append((pending_child, next_key, edge_ts))
        if insert_calls:
            self.stats["insert_calls"] += insert_calls
        return reported

    # ------------------------------------------------------------------ #
    # Algorithm ExpiryRAPQ over interned ids
    # ------------------------------------------------------------------ #

    def _expire(self, now) -> int:
        started = time.perf_counter()
        watermark = self._watermark(now)
        self.snapshot.expire(watermark)
        expired_total = 0
        self.stats["expiry_runs"] += 1
        record_invalidations = self.result_semantics == "explicit"
        for tree in self.index.trees():
            # min_timestamp is a conservative lower bound: above the
            # watermark the tree provably holds no expired node, so the
            # scan (a no-op in the scalar evaluator too) is skipped.
            if tree.min_timestamp <= watermark:
                expired_total += self._expire_tree(
                    tree, watermark, record_invalidations=record_invalidations
                )
                tree.recompute_min()
            if len(tree) <= 1:
                self.index.discard_tree(tree.root_vertex)
        self.stats["nodes_expired"] += expired_total
        self.stats["expiry_seconds"] += time.perf_counter() - started
        return expired_total

    def _expire_tree(self, tree, watermark, record_invalidations) -> int:
        """Mirror of the scalar ``_expire_tree`` with kernel-driven scans."""
        expired_keys = expired_node_keys(tree._nodes, watermark)
        if not expired_keys:
            return 0
        removed_nodes = tree.remove_many(iter(expired_keys))
        index = self.index
        for node in removed_nodes:
            index.unregister_node(tree, node.vertex)

        now = self._current_time if self._current_time is not None else 0
        nodes = tree._nodes
        snap_in = self.snapshot._in
        trans_pairs = self.dfa.trans_pairs
        for key in expired_keys:
            if key in nodes:
                continue  # reconnected transitively by an earlier reconnection
            vertex, state = key
            for (edge_source, label_id), edge_ts in snap_in.get(vertex, {}).items():
                if edge_ts <= watermark:
                    continue
                for source_state, target_state in trans_pairs[label_id]:
                    if target_state != state:
                        continue
                    parent = nodes.get((edge_source, source_state))
                    if parent is None or parent.timestamp <= watermark:
                        continue
                    self._insert(
                        tree, (edge_source, source_state), key, edge_ts, now, watermark, report=False
                    )
                    break
                if key in nodes:
                    break

        permanently_removed = 0
        finals = self.dfa.finals
        resolve = self._vertices.table
        root_resolved = resolve[tree.root_vertex]
        for key in expired_keys:
            if key in nodes:
                continue
            permanently_removed += 1
            vertex, state = key
            if record_invalidations and state in finals:
                self._invalidate(root_resolved, resolve[vertex], now)
        return permanently_removed

    # ------------------------------------------------------------------ #
    # Algorithm Delete over interned ids
    # ------------------------------------------------------------------ #

    def _delete_interned(self, source: int, target: int, label_id: int, now) -> None:
        """Mirror of the scalar ``_process_delete`` over interned ids."""
        self.stats["deletions_processed"] += 1
        self.snapshot.delete(source, target, label_id)
        watermark = self._watermark(now)
        transitions = self.dfa.trans_pairs[label_id]
        if not transitions:
            return
        for tree in self.index.trees_containing(target):
            nodes = tree._nodes
            affected = False
            for source_state, target_state in transitions:
                child_key = (target, target_state)
                child = nodes.get(child_key)
                if child is None or child.parent != (source, source_state):
                    continue  # not a tree edge in this tree
                for key in tree.subtree_keys(child_key):
                    node = nodes.get(key)
                    if node is not None:
                        node.timestamp = -math.inf
                affected = True
            if affected:
                tree.min_timestamp = -math.inf
                self._expire_tree(tree, watermark, record_invalidations=True)
                tree.recompute_min()
                if len(tree) <= 1:
                    self.index.discard_tree(tree.root_vertex)

    # ------------------------------------------------------------------ #
    # Promotion / demotion / checkpointing
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scalar(cls, evaluator: RAPQEvaluator) -> "ColumnarRAPQEvaluator":
        """Intern a scalar evaluator's entire state (promotion).

        Every order the scalar evaluator's behaviour depends on — snapshot
        forward/backward adjacency, per-tree node insertion order, reverse
        index — is adopted verbatim (interned), so the promoted evaluator
        continues the stream exactly where the scalar one would have.
        """
        columnar = cls(
            evaluator.analysis,
            evaluator.window,
            use_reverse_index=evaluator.use_reverse_index,
            result_semantics=evaluator.result_semantics,
            partition=evaluator.partition,
        )
        intern_vertex = columnar._vertices.intern
        intern_label = columnar._intern_label
        for edge in evaluator.snapshot.edges():
            columnar.snapshot.insert(
                intern_vertex(edge.source),
                intern_vertex(edge.target),
                intern_label(edge.label),
                edge.timestamp,
            )
        columnar.snapshot.rebuild_expiry_queue()
        columnar.snapshot.restore_in_order(
            [
                (
                    intern_vertex(target),
                    [(intern_vertex(source), intern_label(label)) for source, label in keys],
                )
                for target, keys in evaluator.snapshot.in_order()
            ]
        )
        for tree in evaluator.index.trees():
            interned_tree = columnar.index.get_or_create(intern_vertex(tree.root_vertex))
            if getattr(tree, "root_cycle_reported", False):
                interned_tree.root_cycle_reported = True
            interned_tree.restore_nodes(
                [
                    (
                        (intern_vertex(node.vertex), node.state),
                        (intern_vertex(node.parent[0]), node.parent[1]),
                        node.timestamp,
                    )
                    for node in tree.nodes()
                    if node.parent is not None
                ]
            )
            interned_tree.recompute_min()
        columnar.index.restore_reverse_index(
            {
                intern_vertex(vertex): [intern_vertex(root) for root in roots]
                for vertex, roots in evaluator.index.reverse_index().items()
            }
        )
        columnar.results = evaluator.results
        columnar._emission_keys = list(evaluator._emission_keys)
        columnar._emission_seq = evaluator._emission_seq
        columnar._current_time = evaluator._current_time
        columnar._last_expiry_boundary = evaluator._last_expiry_boundary
        columnar.stats.update(evaluator.stats)
        return columnar

    def to_scalar(self) -> RAPQEvaluator:
        """Resolve the interned state into a fresh scalar evaluator (demotion).

        The exact inverse of :meth:`from_scalar` — all orders preserved —
        used by :meth:`checkpoint_state` so columnar evaluators emit the
        standard scalar checkpoint format.
        """
        scalar = RAPQEvaluator(
            self.analysis,
            self.window,
            use_reverse_index=self.use_reverse_index,
            result_semantics=self.result_semantics,
            partition=self.partition,
        )
        resolve = self._vertices.table
        resolve_label = self._labels.table
        for edge in self.snapshot.edges():
            scalar.snapshot.insert(
                resolve[edge.source], resolve[edge.target], resolve_label[edge.label], edge.timestamp
            )
        scalar.snapshot.restore_in_order(
            [
                (resolve[target], [(resolve[source], resolve_label[label]) for source, label in keys])
                for target, keys in self.snapshot.in_order()
            ]
        )
        for tree in self.index.trees():
            resolved_tree = scalar.index.get_or_create(resolve[tree.root_vertex])
            if getattr(tree, "root_cycle_reported", False):
                resolved_tree.root_cycle_reported = True
            resolved_tree.restore_nodes(
                [
                    (
                        (resolve[node.vertex], node.state),
                        (resolve[node.parent[0]], node.parent[1]),
                        node.timestamp,
                    )
                    for node in tree.nodes()
                    if node.parent is not None
                ]
            )
        scalar.index.restore_reverse_index(
            {
                resolve[vertex]: [resolve[root] for root in roots]
                for vertex, roots in self.index.reverse_index().items()
            }
        )
        scalar.results = self.results.copy()
        scalar._emission_keys = list(self._emission_keys)
        scalar._emission_seq = self._emission_seq
        scalar._current_time = self._current_time
        scalar._last_expiry_boundary = self._last_expiry_boundary
        scalar.stats.update(self.stats)
        return scalar

    def checkpoint_state(self) -> Dict:
        """Order-exact checkpoint in the standard scalar format.

        :func:`repro.core.checkpoint.checkpoint_rapq` dispatches here for
        columnar evaluators; demoting first keeps the on-disk/wire format
        identical to the scalar evaluator's, byte for byte.
        """
        from ..checkpoint import checkpoint_rapq

        return checkpoint_rapq(self.to_scalar())

    def __str__(self) -> str:
        return (
            f"ColumnarRAPQEvaluator(query={self.analysis.expression}, k={self.dfa.num_states}, "
            f"|W|={self.window.size}, beta={self.window.slide}, "
            f"index={self.index.size_summary()})"
        )
