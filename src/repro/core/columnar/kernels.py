"""Vectorized kernels of the columnar hot path, with pure-Python fallbacks.

The column kernels (:func:`map_labels`, :func:`relevant_indices`,
:func:`first_decrease`, :func:`boundary_crossings`) have two
implementations selected at call time:

* ``"numpy"`` — array operations over zero-copy views of the batch's
  ``array`` columns (``np.frombuffer``), active when numpy is importable;
* ``"pure"`` — tuned pure-Python loops over the same columns, active when
  numpy is missing or ``REPRO_FORCE_PURE=1`` is set in the environment.

Both implementations are exact: they compute the same values in the same
order, so the evaluator's observable behaviour (results, emission order,
checkpoints) does not depend on which one runs.  :func:`set_implementation`
switches at runtime — benchmarks and the differential tests use it to
measure/compare both paths in one process.

The tree-node scans (:func:`expired_node_keys`, :func:`min_timestamp`)
are deliberately plain loops in both modes: node timestamps live inside
Python objects, so numpy would have to *iterate* them anyway
(``np.fromiter``) and the loop is the fast path.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence

__all__ = [
    "fastpath_name",
    "have_numpy",
    "set_implementation",
    "map_labels",
    "relevant_indices",
    "first_decrease",
    "boundary_crossings",
    "expired_node_keys",
    "min_timestamp",
]

try:  # numpy is the optional "fast" extra; its absence is a supported mode
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Whether the environment forbids numpy regardless of availability.
_FORCE_PURE = os.environ.get("REPRO_FORCE_PURE") == "1"

#: Below this column length the numpy kernels fall back to plain loops:
#: view construction and the fixed per-call numpy dispatch cost more than
#: they save on short runs (measured crossover is around a few dozen).
_SMALL = 64

_active = "numpy" if (_np is not None and not _FORCE_PURE) else "pure"


def have_numpy() -> bool:
    """Whether numpy imported successfully (independent of the forced mode)."""
    return _np is not None


def fastpath_name() -> str:
    """Name of the active kernel implementation: ``"numpy"`` or ``"pure"``."""
    return _active


def set_implementation(name: Optional[str]) -> str:
    """Select the kernel implementation at runtime; returns the active name.

    ``None`` restores the import-time default (numpy when available and
    not overridden by ``REPRO_FORCE_PURE=1``).  Benchmarks and tests use
    this to exercise both paths in one process.

    Raises:
        ValueError: for an unknown name, or ``"numpy"`` without numpy.
    """
    global _active
    if name is None:
        name = "numpy" if (_np is not None and not _FORCE_PURE) else "pure"
    if name not in ("numpy", "pure"):
        raise ValueError(f"unknown kernel implementation {name!r}; expected 'numpy' or 'pure'")
    if name == "numpy" and _np is None:
        raise ValueError("cannot select the 'numpy' kernels: numpy is not installed")
    _active = name
    return _active


def map_labels(label_ids: Sequence[int], label_map: List[int]):
    """Map per-tuple batch label ids through ``label_map`` (``-1`` = irrelevant).

    ``label_map`` is one evaluator's view of the batch's label table:
    position ``b`` holds the evaluator-local label id of batch label ``b``,
    or ``-1`` when the label is outside the query alphabet.  The result is
    indexable by tuple position.
    """
    if _active == "numpy" and len(label_ids) >= _SMALL:
        table = _np.asarray(label_map, dtype=_np.int32)
        return table.take(_np.frombuffer(label_ids, dtype=_np.int32))
    return [label_map[lid] for lid in label_ids]


def relevant_indices(mapped) -> List[int]:
    """Positions whose mapped label id is ``>= 0`` (relevant tuples), in order."""
    if _np is not None and not isinstance(mapped, list):
        return _np.flatnonzero(mapped >= 0).tolist()
    return [index for index, lid in enumerate(mapped) if lid >= 0]


def first_decrease(timestamps, start: int, stop: int, floor: Optional[int]) -> Optional[int]:
    """First position in ``[start, stop)`` violating timestamp monotonicity.

    A position violates when its timestamp is below ``floor`` (the
    evaluator's current time; ``None`` = no floor yet) for the first
    element, or below its predecessor for later ones.  Returns ``None``
    when the whole range is non-decreasing — the common case, which the
    numpy path answers with two vectorized comparisons.
    """
    if stop <= start:
        return None
    if _active == "numpy" and stop - start >= _SMALL:
        view = _np.frombuffer(timestamps, dtype=_np.int64)[start:stop]
        if floor is not None and view[0] < floor:
            return start
        drops = _np.flatnonzero(view[1:] < view[:-1])
        if drops.size:
            return start + 1 + int(drops[0])
        return None
    previous = floor if floor is not None else -math.inf
    for index in range(start, stop):
        value = timestamps[index]
        if value < previous:
            return index
        previous = value
    return None


def boundary_crossings(
    timestamps, start: int, stop: int, slide: int, last_boundary: int
) -> List[int]:
    """Positions in ``[start, stop)`` whose tuple first crosses a slide boundary.

    The slice must already be non-decreasing (checked by
    :func:`first_decrease`).  A position crosses when its window end
    ``(ts // slide) * slide`` exceeds every boundary seen so far, starting
    from ``last_boundary`` — these are exactly the tuples at which the
    scalar evaluator's ``_advance_time`` triggers an expiry, so the caller
    can run expiries at only those positions and bulk-skip the rest.
    """
    if _active == "numpy" and stop - start >= _SMALL:
        view = _np.frombuffer(timestamps, dtype=_np.int64)[start:stop]
        ends = (view // slide) * slide
        first = int(_np.searchsorted(ends, last_boundary, side="right"))
        if first >= len(ends):
            return []
        rest = _np.flatnonzero(ends[first + 1 :] > ends[first:-1]) + first + 1
        return [start + first] + [start + int(index) for index in rest]
    crossings: List[int] = []
    for index in range(start, stop):
        boundary = (timestamps[index] // slide) * slide
        if boundary > last_boundary:
            crossings.append(index)
            last_boundary = boundary
    return crossings


def expired_node_keys(nodes: Dict, watermark: float) -> List:
    """Keys of tree nodes with ``timestamp <= watermark``, in node order.

    ``nodes`` is a spanning tree's insertion-ordered ``key -> TreeNode``
    dict.  The root's timestamp is ``+inf`` (it never expires), so a pure
    timestamp scan is equivalent to the scalar evaluator's
    ``parent is not None and timestamp <= watermark`` test.
    """
    return [key for key, node in nodes.items() if node.timestamp <= watermark]


def min_timestamp(nodes: Dict) -> float:
    """Minimum node timestamp of a tree (``+inf`` for a bare root).

    Used to refresh a tree's expiry lower bound after a pruning scan; the
    root's ``+inf`` timestamp makes a plain minimum correct.
    """
    return min((node.timestamp for node in nodes.values()), default=math.inf)
