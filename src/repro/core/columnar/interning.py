"""Interning: dense integer ids for vertex and label values.

The columnar evaluator keys all of its state — snapshot adjacency, tree
nodes, transition tables — by dense ``int`` ids instead of the original
(usually string) values.  Ids are assigned in first-seen order, so an
interner doubles as an ordered id -> value table; everything the outside
world observes (result events, checkpoints, partition admission) is
resolved back through that table at the boundary.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

__all__ = ["Interner"]


class Interner:
    """A bijective value <-> dense-id map, ids assigned in first-seen order.

    Example:
        >>> interner = Interner()
        >>> interner.intern("alice"), interner.intern("bob"), interner.intern("alice")
        (0, 1, 0)
        >>> interner.table[1]
        'bob'
    """

    __slots__ = ("ids", "table")

    def __init__(self) -> None:
        #: value -> id
        self.ids: Dict[Hashable, int] = {}
        #: id -> value (dense, append-only)
        self.table: List[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """Return the id of ``value``, assigning the next dense id if new."""
        ident = self.ids.get(value)
        if ident is None:
            ident = len(self.table)
            self.ids[value] = ident
            self.table.append(value)
        return ident

    def resolve(self, ident: int) -> Hashable:
        """Return the value interned under ``ident``."""
        return self.table[ident]

    def __len__(self) -> int:
        return len(self.table)

    def __contains__(self, value: Hashable) -> bool:
        return value in self.ids

    def __str__(self) -> str:
        return f"Interner(size={len(self.table)})"
