"""Snapshot-recomputation baseline (the "Virtuoso emulation" of §5.6).

The paper compares its incremental algorithms against RDF systems that only
support ad-hoc (one-shot) query evaluation: a middle layer inserts every
incoming tuple into the store and re-evaluates the RPQ over the current
window content from scratch.  :class:`SnapshotRecomputeBaseline` reproduces
that execution model with our own batch evaluator standing in for the RDF
engine, so that Figure 11's speed-up experiment measures exactly the
incremental-vs-recompute gap rather than unrelated system overheads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph.snapshot import SnapshotGraph
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze
from .batch import batch_rapq, batch_rspq
from .results import ResultStream

__all__ = ["SnapshotRecomputeBaseline"]


class SnapshotRecomputeBaseline:
    """Persistent RPQ evaluation by re-running a batch algorithm per tuple.

    The interface mirrors :class:`~repro.core.rapq.RAPQEvaluator` so the
    experiment harness can drive either implementation interchangeably.

    Args:
        query: RPQ expression (string, AST or pre-computed analysis).
        window: sliding-window specification.
        semantics: ``"arbitrary"`` (default) or ``"simple"``; selects which
            batch algorithm is re-run over the window.
    """

    def __init__(self, query, window: WindowSpec, semantics: str = "arbitrary") -> None:
        if isinstance(query, QueryAnalysis):
            self.analysis = query
        else:
            self.analysis = analyze(query)
        if semantics not in {"arbitrary", "simple"}:
            raise ValueError(f"unknown path semantics {semantics!r}")
        self.semantics = semantics
        self.dfa = self.analysis.dfa
        self.window = window
        self.snapshot = SnapshotGraph()
        self.results = ResultStream()
        self._current_time: Optional[int] = None
        self._last_expiry_boundary: Optional[int] = None
        self.stats: Dict[str, int] = {
            "tuples_processed": 0,
            "tuples_discarded": 0,
            "recomputations": 0,
        }

    # ------------------------------------------------------------------ #
    # Public API (mirrors the incremental evaluators)
    # ------------------------------------------------------------------ #

    @property
    def current_time(self) -> Optional[int]:
        """Timestamp of the most recently processed tuple."""
        return self._current_time

    def relevant(self, tup: StreamingGraphTuple) -> bool:
        """Return ``True`` if the tuple's label belongs to the query alphabet."""
        return tup.label in self.analysis.alphabet

    def process(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        """Apply one tuple and re-evaluate the query over the window content."""
        self._advance_time(tup.timestamp)
        if not self.relevant(tup):
            self.stats["tuples_discarded"] += 1
            return []
        self.stats["tuples_processed"] += 1
        if tup.is_delete:
            self.snapshot.delete(tup.source, tup.target, tup.label)
            self._recompute(tup.timestamp, report_new=False)
            return []
        self.snapshot.insert_tuple(tup)
        return self._recompute(tup.timestamp, report_new=True)

    def observe(self, timestamp: int) -> None:
        """Advance the clock for an irrelevant tuple (engine label routing)."""
        self._advance_time(timestamp)
        self.stats["tuples_discarded"] += 1

    def process_stream(self, tuples: Iterable[StreamingGraphTuple]) -> ResultStream:
        """Process an entire stream and return the accumulated result stream."""
        for tup in tuples:
            self.process(tup)
        return self.results

    def answer_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """All distinct pairs reported so far."""
        return self.results.distinct_pairs

    def active_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """Pairs supported by the most recent recomputation."""
        return set(self._last_answer)

    def index_size(self) -> Dict[str, int]:
        """The baseline has no tree index; report zeros for harness symmetry."""
        return {"trees": 0, "nodes": 0}

    def expire_now(self) -> int:
        """Expire window content at the current time (no index to maintain)."""
        if self._current_time is None:
            return 0
        expired = self.snapshot.expire(self._current_time - self.window.size)
        return len(expired)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    _last_answer: Set[Tuple[Vertex, Vertex]] = frozenset()

    def _advance_time(self, timestamp: int) -> None:
        if self._current_time is not None and timestamp < self._current_time:
            raise ValueError(f"timestamps must be non-decreasing: got {timestamp} after {self._current_time}")
        self._current_time = timestamp
        boundary = self.window.window_end(timestamp)
        if self._last_expiry_boundary is None:
            self._last_expiry_boundary = boundary
            return
        if boundary > self._last_expiry_boundary:
            self._last_expiry_boundary = boundary
            self.snapshot.expire(boundary - self.window.size)

    def _recompute(self, now: int, report_new: bool) -> List[Tuple[Vertex, Vertex]]:
        """Run the batch algorithm over the window and report new pairs."""
        self.stats["recomputations"] += 1
        if self.semantics == "arbitrary":
            answer = batch_rapq(self.snapshot, self.dfa)
        else:
            answer = batch_rspq(self.snapshot, self.dfa)
        self._last_answer = answer
        if not report_new:
            return []
        new_pairs = [pair for pair in answer if pair not in self.results.distinct_pairs]
        for source, target in new_pairs:
            self.results.report(source, target, now)
        return new_pairs

    def __str__(self) -> str:
        return (
            f"SnapshotRecomputeBaseline(query={self.analysis.expression}, "
            f"semantics={self.semantics}, |W|={self.window.size})"
        )
