"""Algorithm RSPQ: streaming RPQ evaluation under simple path semantics (§4).

The evaluator mirrors :class:`~repro.core.rapq.RAPQEvaluator` but enforces
that result paths never visit the same graph vertex twice.  It maintains,
per source vertex, an :class:`~repro.core.rspq_tree.RSPQTree` (a spanning
tree whose nodes are *occurrences* of (vertex, state) pairs) together with
the set of markings ``M_x``.

Main differences from the arbitrary-path algorithm, following §4.1:

* a traversal is pruned when the target vertex was already visited **in the
  same state** on the current prefix path (case 1), or when the target pair
  is marked (case 2);
* when the target vertex was visited on the prefix path in a state whose
  suffix language does not contain the new state's suffix language, a
  **conflict** is detected (case 3): the ancestors of the current node are
  unmarked (Algorithm Unmark) and the extensions that were previously pruned
  at those nodes are re-attempted;
* otherwise the path is extended (case 4) and, because the pair is marked on
  first insertion, each pair occurs once per tree in the absence of
  conflicts, giving the same amortized cost as RAPQ.

Because RSPQ evaluation is NP-hard in general, the evaluator accepts a node
budget; exceeding it raises
:class:`~repro.errors.ConflictBudgetExceeded`, which the experiment harness
interprets as "the query cannot be evaluated under simple path semantics on
this graph" (Table 4).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ConflictBudgetExceeded
from ..graph.snapshot import SnapshotGraph
from ..graph.tuples import StreamingGraphTuple, Vertex
from ..graph.window import WindowSpec
from ..regex.analysis import QueryAnalysis, analyze
from .results import ResultStream
from .rspq_tree import NodeKey, RSPQNode, RSPQTree

__all__ = ["RSPQEvaluator"]


@dataclass
class _PendingExtend:
    """A deferred call to Algorithm Extend."""

    parent: RSPQNode
    child_key: NodeKey
    edge_timestamp: int


class RSPQEvaluator:
    """Incremental evaluator for a single RPQ under simple path semantics.

    Args:
        query: RPQ expression (string, AST, or a pre-computed analysis).
        window: sliding-window specification.
        max_nodes_per_tree: optional budget on the size of a single spanning
            tree; ``None`` disables the check.  The paper's Table 4 reports
            which real-world queries can be evaluated at all — this budget is
            how the harness detects the ones that cannot.
    """

    def __init__(
        self,
        query,
        window: WindowSpec,
        max_nodes_per_tree: Optional[int] = None,
        result_semantics: str = "implicit",
        snapshot: Optional[SnapshotGraph] = None,
        manage_snapshot: bool = True,
    ) -> None:
        if isinstance(query, QueryAnalysis):
            self.analysis = query
        else:
            self.analysis = analyze(query)
        if result_semantics not in {"implicit", "explicit"}:
            raise ValueError(f"result_semantics must be 'implicit' or 'explicit', got {result_semantics!r}")
        self.dfa = self.analysis.dfa
        self.window = window
        self.max_nodes_per_tree = max_nodes_per_tree
        self.result_semantics = result_semantics
        self.snapshot = snapshot if snapshot is not None else SnapshotGraph()
        self.manage_snapshot = manage_snapshot
        self.trees: Dict[Vertex, RSPQTree] = {}
        self._vertex_to_roots: Dict[Vertex, Set[Vertex]] = {}
        self.results = ResultStream()
        self._current_time: Optional[int] = None
        self._last_expiry_boundary: Optional[int] = None
        self.stats: Dict[str, float] = {
            "tuples_processed": 0,
            "tuples_discarded": 0,
            "extend_calls": 0,
            "conflicts_detected": 0,
            "unmark_operations": 0,
            "expiry_runs": 0,
            "nodes_expired": 0,
            "deletions_processed": 0,
            "expiry_seconds": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Public API (mirrors RAPQEvaluator)
    # ------------------------------------------------------------------ #

    @property
    def current_time(self) -> Optional[int]:
        """Timestamp of the most recently processed tuple."""
        return self._current_time

    def relevant(self, tup: StreamingGraphTuple) -> bool:
        """Return ``True`` if the tuple's label belongs to the query alphabet."""
        return tup.label in self.analysis.alphabet

    def process(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        """Process one tuple; return the pairs newly reported by this tuple."""
        self._advance_time(tup.timestamp)
        if not self.relevant(tup):
            self.stats["tuples_discarded"] += 1
            return []
        self.stats["tuples_processed"] += 1
        if tup.is_delete:
            self._process_delete(tup)
            return []
        return self._process_insert(tup)

    def observe(self, timestamp: int) -> None:
        """Advance the clock for an irrelevant tuple (engine label routing)."""
        self._advance_time(timestamp)
        self.stats["tuples_discarded"] += 1

    def process_stream(self, tuples: Iterable[StreamingGraphTuple]) -> ResultStream:
        """Process an entire stream and return the accumulated result stream."""
        for tup in tuples:
            self.process(tup)
        return self.results

    def answer_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """All distinct pairs reported so far."""
        return self.results.distinct_pairs

    def active_pairs(self) -> Set[Tuple[Vertex, Vertex]]:
        """Pairs reported and not invalidated by explicit deletions."""
        return self.results.active_pairs

    def index_size(self) -> Dict[str, int]:
        """Aggregate size of all RSPQ spanning trees."""
        nodes = sum(len(tree) for tree in self.trees.values())
        markings = sum(len(tree.markings) for tree in self.trees.values())
        return {"trees": len(self.trees), "nodes": nodes, "markings": markings}

    def expire_now(self) -> int:
        """Force window maintenance at the current time; return #expired nodes."""
        if self._current_time is None:
            return 0
        return self._expire(self._current_time)

    # ------------------------------------------------------------------ #
    # Time and window maintenance
    # ------------------------------------------------------------------ #

    def _advance_time(self, timestamp: int) -> None:
        if self._current_time is not None and timestamp < self._current_time:
            raise ValueError(f"timestamps must be non-decreasing: got {timestamp} after {self._current_time}")
        self._current_time = timestamp
        boundary = self.window.window_end(timestamp)
        if self._last_expiry_boundary is None:
            self._last_expiry_boundary = boundary
            return
        if boundary > self._last_expiry_boundary:
            self._last_expiry_boundary = boundary
            self._expire(boundary)

    def _watermark(self, now: int) -> float:
        return now - self.window.size

    # ------------------------------------------------------------------ #
    # Tree bookkeeping
    # ------------------------------------------------------------------ #

    def _get_or_create_tree(self, root_vertex: Vertex) -> RSPQTree:
        tree = self.trees.get(root_vertex)
        if tree is None:
            tree = RSPQTree(root_vertex, self.dfa.start)
            self.trees[root_vertex] = tree
            self._vertex_to_roots.setdefault(root_vertex, set()).add(root_vertex)
        return tree

    def _discard_tree(self, root_vertex: Vertex) -> None:
        tree = self.trees.pop(root_vertex, None)
        if tree is None:
            return
        for node in tree.nodes():
            roots = self._vertex_to_roots.get(node.vertex)
            if roots is not None:
                roots.discard(root_vertex)
                if not roots:
                    del self._vertex_to_roots[node.vertex]

    def _trees_containing(self, vertex: Vertex) -> List[RSPQTree]:
        roots = self._vertex_to_roots.get(vertex)
        if not roots:
            return []
        return [self.trees[root] for root in list(roots) if root in self.trees]

    def _register_vertex(self, tree: RSPQTree, vertex: Vertex) -> None:
        self._vertex_to_roots.setdefault(vertex, set()).add(tree.root_vertex)

    def _unregister_vertex(self, tree: RSPQTree, vertex: Vertex) -> None:
        if tree.contains_vertex(vertex):
            return
        roots = self._vertex_to_roots.get(vertex)
        if roots is not None:
            roots.discard(tree.root_vertex)
            if not roots:
                del self._vertex_to_roots[vertex]

    # ------------------------------------------------------------------ #
    # Algorithm RSPQ (insertion tuples)
    # ------------------------------------------------------------------ #

    def _process_insert(self, tup: StreamingGraphTuple) -> List[Tuple[Vertex, Vertex]]:
        now = tup.timestamp
        watermark = self._watermark(now)
        if self.manage_snapshot:
            self.snapshot.insert_tuple(tup)
        transitions = self.dfa.transitions_on(tup.label)
        if not transitions:
            return []
        if any(source_state == self.dfa.start for source_state, _ in transitions):
            self._get_or_create_tree(tup.source)

        reported: List[Tuple[Vertex, Vertex]] = []
        for tree in self._trees_containing(tup.source):
            work: List[_PendingExtend] = []
            for source_state, target_state in transitions:
                child_key: NodeKey = (tup.target, target_state)
                for parent in tree.instances_of((tup.source, source_state)):
                    if parent.timestamp <= watermark:
                        continue
                    work.append(
                        _PendingExtend(parent=parent, child_key=child_key, edge_timestamp=tup.timestamp)
                    )
            if work:
                reported.extend(self._extend_loop(tree, work, now, watermark))
        return reported

    # ------------------------------------------------------------------ #
    # Algorithms Extend and Unmark (iterative, shared work stack)
    # ------------------------------------------------------------------ #

    def _extend_loop(
        self,
        tree: RSPQTree,
        work: List[_PendingExtend],
        now: int,
        watermark: float,
        report: bool = True,
    ) -> List[Tuple[Vertex, Vertex]]:
        """Run Algorithm Extend for every pending item, handling conflicts.

        Conflicts trigger Algorithm Unmark inline: ancestors of the current
        node are unmarked and the traversals that had been pruned at them are
        pushed back onto the work stack.
        """
        reported: List[Tuple[Vertex, Vertex]] = []
        stack = list(work)
        while stack:
            pending = stack.pop()
            parent = pending.parent
            if parent.detached or parent.timestamp <= watermark:
                continue
            child_vertex, child_state = pending.child_key
            self.stats["extend_calls"] += 1
            new_timestamp = min(parent.timestamp, pending.edge_timestamp)
            if new_timestamp <= watermark:
                continue

            # Case 1: the target vertex was already visited in the same state
            # on this prefix path — extending would cycle in the product graph.
            states_on_path = parent.states_at_vertex(child_vertex)
            if child_state in states_on_path:
                continue
            # Case 2: the target pair is marked — prune (suffix containment
            # guarantees its subtree has already been fully explored), unless
            # this derivation carries a strictly fresher path timestamp: a
            # fresher path may unblock window-expired extensions of the marked
            # node, so it must be materialized and re-explored.
            if tree.is_marked(pending.child_key):
                best_existing = max(
                    (instance.timestamp for instance in tree.instances_of(pending.child_key)),
                    default=-math.inf,
                )
                if best_existing >= new_timestamp:
                    continue
            # Case 3: conflict between the first occurrence of the vertex on
            # the path and the new state.
            if states_on_path:
                first_state = states_on_path[0]
                if not self.analysis.suffix_contains(first_state, child_state):
                    self.stats["conflicts_detected"] += 1
                    self._unmark(tree, parent, stack, watermark)
                    continue
            # Case 4: extend the path.  If this parent already holds a child
            # with the same key, the extension was performed earlier — but a
            # strictly fresher timestamp must still be propagated so that
            # previously window-blocked continuations get re-explored.
            existing_child = parent.children.get(pending.child_key)
            newly_added = existing_child is None
            if existing_child is not None:
                if existing_child.timestamp >= new_timestamp:
                    continue
                existing_child.timestamp = new_timestamp
                node = existing_child
            else:
                first_occurrence = not tree.has_key(pending.child_key)
                node = tree.add_child(parent, pending.child_key, new_timestamp)
                self._register_vertex(tree, child_vertex)
                if self.max_nodes_per_tree is not None and len(tree) > self.max_nodes_per_tree:
                    raise ConflictBudgetExceeded(
                        f"RSPQ spanning tree rooted at {tree.root_vertex!r} exceeded "
                        f"{self.max_nodes_per_tree} nodes",
                        tree_root=tree.root_vertex,
                        nodes=len(tree),
                    )
                if first_occurrence:
                    tree.mark(pending.child_key)
                # Report the pair unless the target is the tree's own root: a
                # path from x back to x necessarily repeats x, so it is never a
                # simple path (the suffix-containment shortcut argument of
                # Theorem 4 would collapse it to the empty path, which is not
                # an answer).
                if (
                    report
                    and child_state in self.dfa.finals
                    and child_vertex != tree.root_vertex
                    and (
                        first_occurrence
                        or (tree.root_vertex, child_vertex) not in self.results.distinct_pairs
                    )
                ):
                    self.results.report(tree.root_vertex, child_vertex, now)
                    reported.append((tree.root_vertex, child_vertex))

            # Explore window edges leaving the new node.
            for edge in self.snapshot.out_edges(child_vertex):
                if edge.timestamp <= watermark:
                    continue
                next_state = self.dfa.delta(child_state, edge.label)
                if next_state is None:
                    continue
                next_key: NodeKey = (edge.target, next_state)
                stack.append(_PendingExtend(parent=node, child_key=next_key, edge_timestamp=edge.timestamp))
        return reported

    def _unmark(
        self,
        tree: RSPQTree,
        from_node: RSPQNode,
        stack: List[_PendingExtend],
        watermark: float,
    ) -> None:
        """Algorithm Unmark: remove ancestors of ``from_node`` from ``M_x``.

        For every unmarked pair, traversals that were previously pruned
        because the pair was marked are re-attempted: every valid window edge
        entering the pair's vertex from a node already in the tree yields a
        new pending Extend.
        """
        unmarked: List[NodeKey] = []
        node: Optional[RSPQNode] = from_node
        while node is not None and tree.unmark(node.key):
            self.stats["unmark_operations"] += 1
            unmarked.append(node.key)
            node = node.parent
        for key in unmarked:
            vertex, state = key
            for edge in self.snapshot.in_edges(vertex):
                if edge.timestamp <= watermark:
                    continue
                for source_state, target_state in self.dfa.transitions_on(edge.label):
                    if target_state != state:
                        continue
                    for candidate in tree.instances_of((edge.source, source_state)):
                        if candidate.detached or candidate.timestamp <= watermark:
                            continue
                        stack.append(
                            _PendingExtend(parent=candidate, child_key=key, edge_timestamp=edge.timestamp)
                        )

    # ------------------------------------------------------------------ #
    # Algorithm ExpiryRSPQ (window maintenance)
    # ------------------------------------------------------------------ #

    def _expire(self, now: int) -> int:
        started = time.perf_counter()
        watermark = self._watermark(now)
        if self.manage_snapshot:
            self.snapshot.expire(watermark)
        self.stats["expiry_runs"] += 1
        expired_total = 0
        record_invalidations = self.result_semantics == "explicit"
        for tree in list(self.trees.values()):
            expired_total += self._expire_tree(
                tree, watermark, now, record_invalidations=record_invalidations
            )
            if len(tree) <= 1:
                self._discard_tree(tree.root_vertex)
        self.stats["nodes_expired"] += expired_total
        self.stats["expiry_seconds"] += time.perf_counter() - started
        return expired_total

    def _expire_tree(
        self,
        tree: RSPQTree,
        watermark: float,
        now: int,
        record_invalidations: bool,
    ) -> int:
        """Prune expired instances and try to reconnect marked pairs.

        Following Algorithm ExpiryRSPQ: unmarked expired instances are simply
        dropped (the unmarking procedure already explored every alternative
        edge into them), while marked pairs that lost all instances are
        re-extended from surviving nodes through valid window edges.
        """
        expired_roots: List[RSPQNode] = [
            node
            for node in tree.nodes()
            if node.parent is not None
            and node.timestamp <= watermark
            and (node.parent.timestamp > watermark or node.parent.parent is None)
        ]
        if not expired_roots:
            return 0
        removed: List[RSPQNode] = []
        for node in expired_roots:
            if node.detached:
                continue
            removed.extend(tree.detach_subtree(node))
        removed_keys: Set[NodeKey] = {node.key for node in removed}
        for node in removed:
            self._unregister_vertex(tree, node.vertex)

        # Keys that were marked and lost every instance: prune the marking and
        # attempt reconnection through valid edges from surviving instances.
        candidates = [key for key in removed_keys if tree.is_marked(key) and not tree.has_key(key)]
        for key in candidates:
            tree.unmark(key)
        work: List[_PendingExtend] = []
        for key in candidates:
            vertex, state = key
            for edge in self.snapshot.in_edges(vertex):
                if edge.timestamp <= watermark:
                    continue
                for source_state, target_state in self.dfa.transitions_on(edge.label):
                    if target_state != state:
                        continue
                    for parent in tree.instances_of((edge.source, source_state)):
                        if parent.detached or parent.timestamp <= watermark:
                            continue
                        work.append(
                            _PendingExtend(parent=parent, child_key=key, edge_timestamp=edge.timestamp)
                        )
        if work:
            # Reconnection can only re-derive pairs the tree already witnessed
            # before pruning, so it never reports new results.
            self._extend_loop(tree, work, now, watermark, report=False)

        permanently_removed = 0
        for key in removed_keys:
            if tree.has_key(key):
                continue
            permanently_removed += 1
            vertex, state = key
            if record_invalidations and state in self.dfa.finals:
                self.results.invalidate(tree.root_vertex, vertex, now)
        return permanently_removed

    # ------------------------------------------------------------------ #
    # Explicit deletions
    # ------------------------------------------------------------------ #

    def _process_delete(self, tup: StreamingGraphTuple) -> None:
        """Process a negative tuple: mark affected subtrees expired, then expire."""
        self.stats["deletions_processed"] += 1
        if self.manage_snapshot:
            self.snapshot.delete(tup.source, tup.target, tup.label)
        watermark = self._watermark(tup.timestamp)
        transitions = self.dfa.transitions_on(tup.label)
        if not transitions:
            return
        for tree in self._trees_containing(tup.target):
            affected = False
            for source_state, target_state in transitions:
                for node in tree.instances_of((tup.target, target_state)):
                    parent = node.parent
                    if parent is None or parent.key != (tup.source, source_state):
                        continue
                    stack = [node]
                    while stack:
                        current = stack.pop()
                        current.timestamp = -math.inf
                        stack.extend(current.children.values())
                    affected = True
            if affected:
                self._expire_tree(tree, watermark, tup.timestamp, record_invalidations=True)
                if len(tree) <= 1:
                    self._discard_tree(tree.root_vertex)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __str__(self) -> str:
        return (
            f"RSPQEvaluator(query={self.analysis.expression}, k={self.dfa.num_states}, "
            f"|W|={self.window.size}, beta={self.window.slide}, index={self.index_size()})"
        )
