"""Real-world RPQ workload (Tables 2 and 3 of the paper).

The paper evaluates the ten most common *recursive* query shapes found in
Wikidata query logs (covering >99% of recursive queries) plus the most
common non-recursive shape, and instantiates their label variables per
dataset.  This module provides:

* :data:`QUERY_TEMPLATES` — the eleven shapes Q1..Q11 as functions from a
  list of concrete labels to an expression string;
* :data:`DATASET_LABELS` — the label vocabulary of each dataset
  (Table 3; see DESIGN.md for the note about the swapped rows in the
  paper's table);
* :data:`DATASET_QUERY_LABELS` — which labels instantiate each query on
  each dataset;
* :func:`build_workload` — the per-dataset mapping ``Q1.. -> expression``;
* :func:`applicable_queries` — the queries that can be meaningfully
  formulated on a dataset (LDBC lacks enough recursive relations for some).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

__all__ = [
    "QUERY_TEMPLATES",
    "QUERY_NAMES",
    "DATASET_LABELS",
    "DATASET_QUERY_LABELS",
    "DEFAULT_K",
    "applicable_queries",
    "build_workload",
    "instantiate",
]

#: Number of labels used for the variable-arity queries (Q4, Q9, Q10, Q11);
#: the paper sets k = 3 because the StackOverflow graph has three labels.
DEFAULT_K = 3


def _alternation(labels: Sequence[str]) -> str:
    return " | ".join(labels)


#: Table 2 — the most common RPQs in real-world (Wikidata) query logs.
#: Each template maps an ordered list of concrete edge labels to the
#: expression string understood by :func:`repro.regex.parse`.
QUERY_TEMPLATES: Dict[str, Callable[[Sequence[str]], str]] = {
    # Q1: a*
    "Q1": lambda labels: f"{labels[0]}*",
    # Q2: a . b*
    "Q2": lambda labels: f"{labels[0]} {labels[1]}*",
    # Q3: a . b* . c*
    "Q3": lambda labels: f"{labels[0]} {labels[1]}* {labels[2]}*",
    # Q4: (a1 + a2 + ... + ak)*
    "Q4": lambda labels: f"({_alternation(labels)})*",
    # Q5: a . b* . c
    "Q5": lambda labels: f"{labels[0]} {labels[1]}* {labels[2]}",
    # Q6: a* . b*
    "Q6": lambda labels: f"{labels[0]}* {labels[1]}*",
    # Q7: a . b . c*
    "Q7": lambda labels: f"{labels[0]} {labels[1]} {labels[2]}*",
    # Q8: a? . b*
    "Q8": lambda labels: f"{labels[0]}? {labels[1]}*",
    # Q9: (a1 + a2 + ... + ak)+
    "Q9": lambda labels: f"({_alternation(labels)})+",
    # Q10: (a1 + a2 + ... + ak) . b*
    "Q10": lambda labels: f"({_alternation(labels[:-1])}) {labels[-1]}*",
    # Q11: a1 . a2 . ... . ak   (the most common non-recursive query)
    "Q11": lambda labels: " ".join(labels),
}

#: Query names in the paper's order.
QUERY_NAMES: List[str] = list(QUERY_TEMPLATES.keys())


#: Table 3 — label vocabularies per dataset.  The paper's table appears to
#: swap the SO and LDBC rows (StackOverflow has exactly the three
#: interaction labels, LDBC SNB has knows/replyOf/hasCreator/likes); we use
#: the consistent assignment and record the substitution in DESIGN.md.
DATASET_LABELS: Dict[str, List[str]] = {
    "stackoverflow": ["a2q", "c2a", "c2q"],
    "ldbc": ["knows", "replyOf", "hasCreator", "likes"],
    "yago": ["happenedIn", "hasCapital", "participatedIn", "isLocatedIn", "created"],
}


def _so_labels(*indices: int) -> List[str]:
    return [DATASET_LABELS["stackoverflow"][i] for i in indices]


def _ldbc_labels(*names: str) -> List[str]:
    return list(names)


def _yago_labels(*names: str) -> List[str]:
    return list(names)


#: Which concrete labels instantiate each query template on each dataset.
#: Recursive positions (the starred labels) are bound to the dataset's
#: recursive relations: any label on the dense SO graph, ``knows`` and
#: ``replyOf`` on LDBC, and the location/participation predicates on Yago.
DATASET_QUERY_LABELS: Dict[str, Dict[str, List[str]]] = {
    "stackoverflow": {
        "Q1": _so_labels(0),
        "Q2": _so_labels(0, 1),
        "Q3": _so_labels(0, 1, 2),
        "Q4": _so_labels(0, 1, 2),
        "Q5": _so_labels(0, 1, 2),
        "Q6": _so_labels(0, 1),
        "Q7": _so_labels(0, 1, 2),
        "Q8": _so_labels(0, 1),
        "Q9": _so_labels(0, 1, 2),
        "Q10": _so_labels(0, 1, 2),
        "Q11": _so_labels(0, 1, 2),
    },
    "ldbc": {
        "Q1": _ldbc_labels("knows"),
        "Q2": _ldbc_labels("hasCreator", "knows"),
        "Q3": _ldbc_labels("hasCreator", "knows", "replyOf"),
        "Q5": _ldbc_labels("likes", "replyOf", "hasCreator"),
        "Q6": _ldbc_labels("knows", "replyOf"),
        "Q7": _ldbc_labels("likes", "hasCreator", "knows"),
        "Q11": _ldbc_labels("likes", "hasCreator", "knows"),
    },
    "yago": {
        "Q1": _yago_labels("isLocatedIn"),
        "Q2": _yago_labels("happenedIn", "isLocatedIn"),
        "Q3": _yago_labels("happenedIn", "isLocatedIn", "hasCapital"),
        "Q4": _yago_labels("isLocatedIn", "hasCapital", "participatedIn"),
        "Q5": _yago_labels("happenedIn", "isLocatedIn", "hasCapital"),
        "Q6": _yago_labels("isLocatedIn", "hasCapital"),
        "Q7": _yago_labels("participatedIn", "happenedIn", "isLocatedIn"),
        "Q8": _yago_labels("happenedIn", "isLocatedIn"),
        "Q9": _yago_labels("isLocatedIn", "hasCapital", "participatedIn"),
        "Q10": _yago_labels("participatedIn", "happenedIn", "isLocatedIn"),
        "Q11": _yago_labels("participatedIn", "happenedIn", "isLocatedIn"),
    },
}


def applicable_queries(dataset: str) -> List[str]:
    """Return the query names that can be formulated on ``dataset``.

    The LDBC streaming graph has only two recursive relations, so the
    alternation-under-star queries (Q4, Q9) and the ones needing three
    distinct recursive labels (Q8, Q10 in our binding) are omitted, matching
    the subset the paper reports in Figure 4(b).
    """
    bindings = DATASET_QUERY_LABELS.get(dataset)
    if bindings is None:
        raise KeyError(f"unknown dataset {dataset!r}; known: {sorted(DATASET_QUERY_LABELS)}")
    return [name for name in QUERY_NAMES if name in bindings]


def instantiate(query_name: str, labels: Sequence[str]) -> str:
    """Instantiate a query template with concrete labels.

    Args:
        query_name: one of ``Q1`` .. ``Q11``.
        labels: the concrete labels, in template order.

    Raises:
        KeyError: for an unknown query name.
        ValueError: when not enough labels are supplied.
    """
    try:
        template = QUERY_TEMPLATES[query_name]
    except KeyError:
        raise KeyError(f"unknown query {query_name!r}; known: {QUERY_NAMES}") from None
    required = _labels_required(query_name)
    if len(labels) < required:
        raise ValueError(f"query {query_name} needs at least {required} labels, got {len(labels)}")
    return template(list(labels))


def _labels_required(query_name: str) -> int:
    requirements = {
        "Q1": 1,
        "Q2": 2,
        "Q3": 3,
        "Q4": 2,
        "Q5": 3,
        "Q6": 2,
        "Q7": 3,
        "Q8": 2,
        "Q9": 2,
        "Q10": 2,
        "Q11": 2,
    }
    return requirements[query_name]


def build_workload(dataset: str) -> Dict[str, str]:
    """Return ``{query name -> concrete expression}`` for ``dataset``.

    Example:
        >>> build_workload("stackoverflow")["Q1"]
        'a2q*'
    """
    bindings = DATASET_QUERY_LABELS.get(dataset)
    if bindings is None:
        raise KeyError(f"unknown dataset {dataset!r}; known: {sorted(DATASET_QUERY_LABELS)}")
    return {name: instantiate(name, labels) for name, labels in bindings.items()}
