"""Workloads: the real-world query templates and synthetic streaming graphs.

The four graph generators are laptop-scale substitutes for the paper's
datasets (StackOverflow, LDBC SNB, Yago2s, gMark); DESIGN.md documents why
each substitution preserves the behaviour the evaluation depends on.
"""

from .gmark import (
    GMarkGraphGenerator,
    GMarkQueryGenerator,
    GMarkRelation,
    GMarkSchema,
    default_social_schema,
)
from .ldbc import LDBC_LABELS, LDBCLikeGenerator
from .queries import (
    DATASET_LABELS,
    DATASET_QUERY_LABELS,
    DEFAULT_K,
    QUERY_NAMES,
    QUERY_TEMPLATES,
    applicable_queries,
    build_workload,
    instantiate,
)
from .stackoverflow import SO_LABELS, StackOverflowGenerator
from .synthetic import (
    PreferentialAttachmentStreamGenerator,
    UniformStreamGenerator,
    timestamps_at_fixed_rate,
)
from .yago import YAGO_QUERY_LABELS, YagoLikeGenerator

__all__ = [
    "DATASET_LABELS",
    "DATASET_QUERY_LABELS",
    "DEFAULT_K",
    "GMarkGraphGenerator",
    "GMarkQueryGenerator",
    "GMarkRelation",
    "GMarkSchema",
    "LDBC_LABELS",
    "LDBCLikeGenerator",
    "PreferentialAttachmentStreamGenerator",
    "QUERY_NAMES",
    "QUERY_TEMPLATES",
    "SO_LABELS",
    "StackOverflowGenerator",
    "UniformStreamGenerator",
    "YAGO_QUERY_LABELS",
    "YagoLikeGenerator",
    "applicable_queries",
    "build_workload",
    "default_social_schema",
    "instantiate",
    "timestamps_at_fixed_rate",
]
