"""Yago2s-like streaming RDF graph (substitute for the Yago2s dump).

Yago2s is a real-world RDF knowledge base with roughly one hundred distinct
predicates over tens of millions of subjects.  The evaluation uses it as
the *sparse, heterogeneous* extreme: every query label matches only a small
fraction of the triples, so Delta stays small and throughput is high.  The
paper emulates streaming by assigning monotonically non-decreasing
timestamps to triples at a fixed rate so that every window holds the same
number of edges.

:class:`YagoLikeGenerator` reproduces those characteristics: a large
predicate vocabulary in which the query predicates of Table 3 appear with
low frequency, a weakly hierarchical entity space (events, places,
countries) so that location predicates form shallow recursive chains, and
fixed-rate timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..graph.stream import ListStream
from ..graph.tuples import EdgeOp, StreamingGraphTuple
from .synthetic import timestamps_at_fixed_rate

__all__ = ["YAGO_QUERY_LABELS", "YagoLikeGenerator"]

#: Predicates used by the query workload on the Yago-like graph.
YAGO_QUERY_LABELS: List[str] = [
    "happenedIn",
    "hasCapital",
    "participatedIn",
    "isLocatedIn",
    "created",
]


@dataclass
class YagoLikeGenerator:
    """Synthetic stand-in for the Yago2s RDF stream.

    Args:
        num_entities: number of entities per stratum (events, places,
            countries, people); the total vertex universe is about four
            times this number.
        num_noise_predicates: how many non-query predicates to include, so
            that (as in the real data) most tuples are irrelevant to any
            single query and are discarded by the engine.
        edges_per_timestamp: fixed timestamp-assignment rate.
        seed: RNG seed.
    """

    num_entities: int = 400
    num_noise_predicates: int = 95
    edges_per_timestamp: int = 25
    seed: int = 41

    def generate(self, num_edges: int) -> ListStream:
        """Generate ``num_edges`` triples with fixed-rate timestamps."""
        rng = random.Random(self.seed)
        events = [f"event{i}" for i in range(self.num_entities)]
        places = [f"place{i}" for i in range(self.num_entities)]
        countries = [f"country{i}" for i in range(max(10, self.num_entities // 10))]
        people = [f"person{i}" for i in range(self.num_entities)]
        noise_predicates = [f"predicate{i}" for i in range(self.num_noise_predicates)]
        stamps = timestamps_at_fixed_rate(num_edges, self.edges_per_timestamp)

        tuples: List[StreamingGraphTuple] = []
        for index in range(num_edges):
            roll = rng.random()
            if roll < 0.08:
                source, target, label = rng.choice(events), rng.choice(places), "happenedIn"
            elif roll < 0.14:
                source, target, label = rng.choice(countries), rng.choice(places), "hasCapital"
            elif roll < 0.22:
                source, target, label = rng.choice(people), rng.choice(events), "participatedIn"
            elif roll < 0.34:
                # isLocatedIn forms shallow recursive chains: place -> place or
                # place -> country.
                source = rng.choice(places)
                target = rng.choice(places) if rng.random() < 0.6 else rng.choice(countries)
                label = "isLocatedIn"
            elif roll < 0.40:
                source, target, label = rng.choice(people), rng.choice(events), "created"
            else:
                # The long tail of predicates irrelevant to the query workload.
                source = rng.choice(people + events + places)
                target = rng.choice(people + events + places)
                label = rng.choice(noise_predicates)
            if source == target:
                target = f"{target}_x"
            tuples.append(
                StreamingGraphTuple(
                    timestamp=stamps[index],
                    source=source,
                    target=target,
                    label=label,
                    op=EdgeOp.INSERT,
                )
            )
        return ListStream(tuples, validate_order=False)
