"""gMark-like schema-driven graph and query workload generator.

The paper uses gMark (Bagan et al.) to (i) generate a synthetic graph that
mimics the LDBC SNB schema and (ii) create synthetic RPQ workloads whose
*query size* — the number of labels plus the number of ``*``/``+``
occurrences — ranges from 2 to 20.  Each query groups labels into
concatenations and alternations of size up to three, and each group
carries a Kleene star or plus with 50% probability (§5.1.2).

This module reproduces both parts:

* :class:`GMarkSchema` / :class:`GMarkGraphGenerator` — a schema of typed
  vertices and labelled relations with per-relation frequencies, and a
  stream generator that draws type-correct edges at a fixed timestamp rate;
* :class:`GMarkQueryGenerator` — the random query workload with the size
  definition of the paper (:func:`query_size` matches
  ``RegexNode.size()``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..graph.stream import ListStream
from ..graph.tuples import EdgeOp, StreamingGraphTuple
from .synthetic import timestamps_at_fixed_rate

__all__ = [
    "GMarkRelation",
    "GMarkSchema",
    "GMarkGraphGenerator",
    "GMarkQueryGenerator",
    "default_social_schema",
]


@dataclass(frozen=True)
class GMarkRelation:
    """One labelled relation of a gMark schema."""

    label: str
    source_type: str
    target_type: str
    weight: float = 1.0


@dataclass
class GMarkSchema:
    """A gMark schema: vertex types with populations plus labelled relations."""

    vertex_populations: Dict[str, int]
    relations: List[GMarkRelation]

    def labels(self) -> List[str]:
        """Return the labels of every relation, in schema order."""
        return [relation.label for relation in self.relations]

    def validate(self) -> None:
        """Check that every relation endpoint type has a population."""
        for relation in self.relations:
            for vertex_type in (relation.source_type, relation.target_type):
                if vertex_type not in self.vertex_populations:
                    raise ValueError(
                        f"relation {relation.label!r} references unknown vertex type {vertex_type!r}"
                    )
                if self.vertex_populations[vertex_type] <= 0:
                    raise ValueError(f"vertex type {vertex_type!r} must have a positive population")


def default_social_schema(scale: int = 200) -> GMarkSchema:
    """The pre-configured schema mimicking LDBC SNB used in §5.1.2.

    Args:
        scale: population of the person type; other populations are derived
            from it with the ratios of the social-network schema.
    """
    return GMarkSchema(
        vertex_populations={
            "person": scale,
            "post": scale * 4,
            "comment": scale * 6,
            "forum": max(10, scale // 5),
            "tag": max(10, scale // 4),
        },
        relations=[
            GMarkRelation("knows", "person", "person", weight=3.0),
            GMarkRelation("follows", "person", "person", weight=2.0),
            GMarkRelation("likes", "person", "post", weight=3.0),
            GMarkRelation("hasCreator", "post", "person", weight=2.0),
            GMarkRelation("replyOf", "comment", "post", weight=3.0),
            GMarkRelation("replyOfComment", "comment", "comment", weight=2.0),
            GMarkRelation("hasMember", "forum", "person", weight=1.0),
            GMarkRelation("containerOf", "forum", "post", weight=1.0),
            GMarkRelation("hasTag", "post", "tag", weight=1.5),
            GMarkRelation("hasInterest", "person", "tag", weight=1.0),
        ],
    )


@dataclass
class GMarkGraphGenerator:
    """Generate a schema-conforming streaming graph.

    Edges are drawn relation-by-relation proportionally to the relation
    weights; endpoints are drawn from the relation's source/target type
    populations with a mild power-law skew so that hubs exist, as in the
    LDBC-like graphs gMark is configured to mimic.
    """

    schema: GMarkSchema
    edges_per_timestamp: int = 25
    seed: int = 53
    skew: float = 1.3

    def __post_init__(self) -> None:
        self.schema.validate()

    def _skewed_index(self, rng: random.Random, population: int) -> int:
        # Inverse-CDF sampling of a bounded Zipf-like distribution.
        u = rng.random()
        return min(population - 1, int(population * (u ** self.skew)))

    def generate(self, num_edges: int) -> ListStream:
        """Generate ``num_edges`` tuples with fixed-rate timestamps."""
        rng = random.Random(self.seed)
        stamps = timestamps_at_fixed_rate(num_edges, self.edges_per_timestamp)
        weights = [relation.weight for relation in self.schema.relations]
        tuples: List[StreamingGraphTuple] = []
        for index in range(num_edges):
            relation = rng.choices(self.schema.relations, weights=weights, k=1)[0]
            source_population = self.schema.vertex_populations[relation.source_type]
            target_population = self.schema.vertex_populations[relation.target_type]
            source = f"{relation.source_type}{self._skewed_index(rng, source_population)}"
            target = f"{relation.target_type}{self._skewed_index(rng, target_population)}"
            if source == target:
                shifted = (self._skewed_index(rng, target_population) + 1) % target_population
                target = f"{relation.target_type}{shifted}"
            tuples.append(
                StreamingGraphTuple(
                    timestamp=stamps[index],
                    source=source,
                    target=target,
                    label=relation.label,
                    op=EdgeOp.INSERT,
                )
            )
        return ListStream(tuples, validate_order=False)


@dataclass
class GMarkQueryGenerator:
    """Random RPQ workload generator following §5.1.2.

    Each query is a concatenation of *groups*; a group is a concatenation or
    alternation of up to three labels and carries ``*`` or ``+`` with 50%
    probability.  The query size (labels + stars/pluses) is controlled so a
    workload sweeping sizes 2..20 can be produced.
    """

    labels: Sequence[str]
    seed: int = 67
    max_group_labels: int = 3
    star_probability: float = 0.5

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("need at least one label to generate queries")
        self._rng = random.Random(self.seed)

    def generate_query(self, size: int) -> str:
        """Generate one query expression of exactly ``size``.

        The size of a query is the number of labels plus the number of
        occurrences of ``*`` and ``+`` (the paper's definition, identical to
        :meth:`repro.regex.ast.RegexNode.size`).
        """
        if size < 1:
            raise ValueError("query size must be at least 1")
        groups: List[str] = []
        remaining = size
        while remaining > 0:
            starred = self._rng.random() < self.star_probability
            star_cost = 1 if starred else 0
            max_labels = min(self.max_group_labels, remaining - star_cost)
            if max_labels < 1:
                starred = False
                star_cost = 0
                max_labels = min(self.max_group_labels, remaining)
            group_labels = self._rng.randint(1, max_labels)
            remaining -= group_labels + star_cost
            chosen = [self._rng.choice(list(self.labels)) for _ in range(group_labels)]
            use_alternation = group_labels > 1 and self._rng.random() < 0.5
            if use_alternation:
                body = " | ".join(chosen)
            else:
                body = " ".join(chosen)
            if starred:
                operator = "*" if self._rng.random() < 0.5 else "+"
                groups.append(f"({body}){operator}")
            elif group_labels > 1 and use_alternation:
                groups.append(f"({body})")
            else:
                groups.append(body)
        return " ".join(groups)

    def generate_workload(
        self,
        num_queries: int,
        min_size: int = 2,
        max_size: int = 20,
    ) -> List[Tuple[int, str]]:
        """Generate ``num_queries`` queries with sizes cycling through the range.

        Returns ``(requested size, expression)`` pairs, matching the 100-query
        workload of §5.3.
        """
        if min_size > max_size:
            raise ValueError("min_size must not exceed max_size")
        workload: List[Tuple[int, str]] = []
        sizes = list(range(min_size, max_size + 1))
        for index in range(num_queries):
            size = sizes[index % len(sizes)]
            workload.append((size, self.generate_query(size)))
        return workload
