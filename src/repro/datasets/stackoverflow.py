"""StackOverflow-like streaming graph (substitute for the SO temporal graph).

The paper's StackOverflow dataset is a temporal graph of 63M user
interactions with a single vertex type and three edge labels:

* ``a2q`` — user *u* answered user *v*'s question;
* ``c2a`` — user *u* commented on user *v*'s answer;
* ``c2q`` — user *u* commented on user *v*'s question.

The structural properties the evaluation relies on are (i) the tiny label
alphabet, so every query label matches a large fraction of the edges, and
(ii) the dense, highly cyclic interaction pattern, which makes the Delta
tree index large and drives the worst-case behaviour in Figures 4(c) and 5.

:class:`StackOverflowGenerator` reproduces those properties at laptop scale
with a preferential-attachment process over a single vertex population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graph.stream import ListStream
from .synthetic import PreferentialAttachmentStreamGenerator

__all__ = ["SO_LABELS", "StackOverflowGenerator"]

#: The three interaction labels of the StackOverflow temporal graph.
SO_LABELS: List[str] = ["a2q", "c2a", "c2q"]


@dataclass
class StackOverflowGenerator:
    """Synthetic stand-in for the StackOverflow interaction stream.

    Args:
        edges_per_timestamp: arrival rate (edges per time unit); the default
            of 20 makes a window of a few hundred time units hold thousands
            of edges, mirroring the paper's one-month windows.
        new_vertex_probability: user-population growth rate; the small
            default keeps the graph dense and cyclic.
        seed: RNG seed for reproducible workloads.
    """

    edges_per_timestamp: int = 20
    new_vertex_probability: float = 0.03
    seed: int = 17

    #: Label frequencies roughly follow the real dataset, where answers are
    #: more common than comments on answers.
    label_weights = (0.5, 0.3, 0.2)

    def generate(self, num_edges: int) -> ListStream:
        """Generate ``num_edges`` interaction tuples."""
        generator = PreferentialAttachmentStreamGenerator(
            labels=SO_LABELS,
            new_vertex_probability=self.new_vertex_probability,
            edges_per_timestamp=self.edges_per_timestamp,
            label_weights=self.label_weights,
            seed=self.seed,
        )
        return generator.generate(num_edges)
