"""LDBC SNB-like streaming graph (substitute for the LDBC update stream).

The LDBC Social Network Benchmark update stream interleaves several types
of user activity.  For the RPQ workload what matters is the *schema*: the
graph is heterogeneous (persons, posts, comments) and only two relations
are recursive —

* ``knows``   (person → person): friendships form arbitrarily long chains;
* ``replyOf`` (comment → comment/post): reply threads form trees;

while ``hasCreator`` (message → person) and ``likes`` (person → message)
are non-recursive.  This is why only a subset of the Table 2 queries can be
formulated on LDBC (Figure 4(b)).

:class:`LDBCLikeGenerator` simulates that update stream: persons join the
network, befriend each other, create posts, reply to existing messages and
like messages, with type-correct endpoints for every label.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..graph.stream import ListStream
from ..graph.tuples import EdgeOp, StreamingGraphTuple

__all__ = ["LDBC_LABELS", "LDBCLikeGenerator"]

#: Edge labels of the LDBC-like streaming graph.
LDBC_LABELS: List[str] = ["knows", "replyOf", "hasCreator", "likes"]


@dataclass
class LDBCLikeGenerator:
    """Synthetic stand-in for the LDBC SNB update stream.

    Args:
        edges_per_timestamp: arrival rate (edges per time unit).
        seed: RNG seed.
        knows_fraction: fraction of activity that creates friendships.
        reply_fraction: fraction of activity that creates replies (each reply
            also produces a ``hasCreator`` edge, as in the real update
            stream).
        like_fraction: fraction of activity that creates likes.
    """

    edges_per_timestamp: int = 20
    seed: int = 29
    knows_fraction: float = 0.30
    reply_fraction: float = 0.35
    like_fraction: float = 0.20
    #: Initial person population; the real LDBC SF10 graph is sparse (average
    #: degree around 5), so the generator keeps the person population large
    #: relative to the number of friendship edges.
    initial_persons: int = 40
    #: Probability that an activity step introduces a new person.
    newcomer_probability: float = 0.12

    def generate(self, num_edges: int) -> ListStream:
        """Generate approximately ``num_edges`` tuples of the update stream."""
        rng = random.Random(self.seed)
        persons: List[str] = [f"person{i}" for i in range(max(2, self.initial_persons))]
        messages: List[str] = []
        tuples: List[StreamingGraphTuple] = []
        emitted = 0
        clock_edges = 0

        def timestamp() -> int:
            return 1 + clock_edges // self.edges_per_timestamp

        def emit(source: str, target: str, label: str) -> None:
            nonlocal emitted, clock_edges
            tuples.append(
                StreamingGraphTuple(
                    timestamp=timestamp(),
                    source=source,
                    target=target,
                    label=label,
                    op=EdgeOp.INSERT,
                )
            )
            emitted += 1
            clock_edges += 1

        post_counter = 0
        while emitted < num_edges:
            action = rng.random()
            # New people keep joining so the friendship graph stays sparse.
            if action < self.newcomer_probability or len(persons) < 4:
                newcomer = f"person{len(persons)}"
                persons.append(newcomer)
                emit(newcomer, rng.choice(persons[:-1]), "knows")
                continue
            if action < self.newcomer_probability + self.knows_fraction:
                a, b = rng.sample(persons, 2)
                emit(a, b, "knows")
                continue
            if action < self.newcomer_probability + self.knows_fraction + self.reply_fraction and messages:
                # A person replies to an existing message: replyOf + hasCreator.
                author = rng.choice(persons)
                parent = rng.choice(messages)
                post_counter += 1
                comment = f"comment{post_counter}"
                messages.append(comment)
                emit(comment, parent, "replyOf")
                if emitted < num_edges:
                    emit(comment, author, "hasCreator")
                continue
            if (
                action
                < self.newcomer_probability + self.knows_fraction + self.reply_fraction + self.like_fraction
                and messages
            ):
                person = rng.choice(persons)
                emit(person, rng.choice(messages), "likes")
                continue
            # Otherwise a person creates a fresh post.
            author = rng.choice(persons)
            post_counter += 1
            post = f"post{post_counter}"
            messages.append(post)
            emit(post, author, "hasCreator")
        return ListStream(tuples[:num_edges], validate_order=False)
