"""Generic synthetic streaming-graph generators.

The dataset-specific generators (StackOverflow-like, LDBC-like, Yago-like,
gMark) are built on top of these primitives:

* :class:`UniformStreamGenerator` — edges drawn uniformly at random over a
  fixed vertex set and label alphabet;
* :class:`PreferentialAttachmentStreamGenerator` — a temporal
  preferential-attachment process that yields the skewed degree
  distributions and heavy cyclicity of real interaction networks;
* :func:`timestamps_at_fixed_rate` — the fixed-rate timestamp assignment
  the paper uses to emulate sliding windows over static RDF data (Yago2s,
  gMark).

All generators are deterministic given their seed so experiments are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph.stream import ListStream
from ..graph.tuples import EdgeOp, StreamingGraphTuple

__all__ = [
    "UniformStreamGenerator",
    "PreferentialAttachmentStreamGenerator",
    "timestamps_at_fixed_rate",
]


def timestamps_at_fixed_rate(num_edges: int, edges_per_timestamp: int) -> List[int]:
    """Assign monotonically non-decreasing timestamps at a fixed rate.

    The paper emulates sliding windows over static RDF graphs (Yago2s, the
    gMark output) by assigning a monotonically non-decreasing timestamp to
    each triple at a fixed rate, so that every window holds the same number
    of edges.

    Args:
        num_edges: number of edges to stamp.
        edges_per_timestamp: how many consecutive edges share a timestamp.

    Returns:
        list of ``num_edges`` timestamps starting at 1.
    """
    if edges_per_timestamp <= 0:
        raise ValueError("edges_per_timestamp must be positive")
    return [1 + index // edges_per_timestamp for index in range(num_edges)]


@dataclass
class UniformStreamGenerator:
    """Streaming graph with uniformly random edges.

    Args:
        num_vertices: size of the vertex universe (vertices are ``0..n-1``).
        labels: the edge-label alphabet, sampled uniformly (or according to
            ``label_weights`` when given).
        edges_per_timestamp: arrival rate; consecutive edges share a
            timestamp in groups of this size.
        label_weights: optional per-label sampling weights.
        seed: RNG seed.
        allow_self_loops: whether ``(v, v)`` edges may be generated.
    """

    num_vertices: int
    labels: Sequence[str]
    edges_per_timestamp: int = 10
    label_weights: Optional[Sequence[float]] = None
    seed: int = 1
    allow_self_loops: bool = False

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ValueError("need at least two vertices")
        if not self.labels:
            raise ValueError("need at least one label")
        if self.label_weights is not None and len(self.label_weights) != len(self.labels):
            raise ValueError("label_weights must match labels in length")

    def generate(self, num_edges: int) -> ListStream:
        """Generate ``num_edges`` insertion tuples."""
        rng = random.Random(self.seed)
        stamps = timestamps_at_fixed_rate(num_edges, self.edges_per_timestamp)
        tuples: List[StreamingGraphTuple] = []
        labels = list(self.labels)
        weights = list(self.label_weights) if self.label_weights is not None else None
        for index in range(num_edges):
            source = rng.randrange(self.num_vertices)
            target = rng.randrange(self.num_vertices)
            while not self.allow_self_loops and target == source:
                target = rng.randrange(self.num_vertices)
            if weights is None:
                label = rng.choice(labels)
            else:
                label = rng.choices(labels, weights=weights, k=1)[0]
            tuples.append(
                StreamingGraphTuple(
                    timestamp=stamps[index],
                    source=source,
                    target=target,
                    label=label,
                    op=EdgeOp.INSERT,
                )
            )
        return ListStream(tuples, validate_order=False)


@dataclass
class PreferentialAttachmentStreamGenerator:
    """Temporal preferential-attachment stream.

    Each new edge chooses its endpoints either among existing vertices
    (proportionally to their current degree) or introduces a new vertex with
    probability ``new_vertex_probability``.  The result is a skewed degree
    distribution and many short cycles — the structural features of the
    StackOverflow interaction graph that drive the paper's hardest
    workload.

    Args:
        labels: edge-label alphabet.
        new_vertex_probability: probability that an endpoint is a brand-new
            vertex rather than an existing one.
        edges_per_timestamp: arrival rate (edges sharing one timestamp).
        label_weights: optional per-label sampling weights.
        seed: RNG seed.
    """

    labels: Sequence[str]
    new_vertex_probability: float = 0.05
    edges_per_timestamp: int = 10
    label_weights: Optional[Sequence[float]] = None
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("need at least one label")
        if not 0.0 < self.new_vertex_probability <= 1.0:
            raise ValueError("new_vertex_probability must be in (0, 1]")

    def generate(self, num_edges: int) -> ListStream:
        """Generate ``num_edges`` insertion tuples."""
        rng = random.Random(self.seed)
        stamps = timestamps_at_fixed_rate(num_edges, self.edges_per_timestamp)
        labels = list(self.labels)
        weights = list(self.label_weights) if self.label_weights is not None else None
        # degree-weighted endpoint pool: vertices appear once per incident edge
        endpoint_pool: List[int] = [0, 1]
        next_vertex = 2
        tuples: List[StreamingGraphTuple] = []
        for index in range(num_edges):
            source = self._pick_endpoint(rng, endpoint_pool, next_vertex)
            if source == next_vertex:
                next_vertex += 1
            target = self._pick_endpoint(rng, endpoint_pool, next_vertex)
            if target == next_vertex:
                next_vertex += 1
            if target == source:
                target = self._pick_endpoint(rng, endpoint_pool, next_vertex)
                if target == next_vertex:
                    next_vertex += 1
                if target == source:
                    target = (source + 1) % max(next_vertex, 2)
            endpoint_pool.append(source)
            endpoint_pool.append(target)
            if weights is None:
                label = rng.choice(labels)
            else:
                label = rng.choices(labels, weights=weights, k=1)[0]
            tuples.append(
                StreamingGraphTuple(
                    timestamp=stamps[index],
                    source=source,
                    target=target,
                    label=label,
                    op=EdgeOp.INSERT,
                )
            )
        return ListStream(tuples, validate_order=False)

    def _pick_endpoint(self, rng: random.Random, pool: List[int], next_vertex: int) -> int:
        if rng.random() < self.new_vertex_probability:
            return next_vertex
        return pool[rng.randrange(len(pool))]
